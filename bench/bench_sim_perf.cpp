// Experiment T4: substrate performance (google-benchmark).
//
// Throughput of the simulation substrate as a function of network size: RHS
// evaluation, Jacobian assembly, adaptive ODE steps, SSA event processing,
// and whole-design runs. This is the "simulator scaling" table that stands
// in for the authors' testbed characterization.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "async/chain.hpp"
#include "core/network.hpp"
#include "dsp/filters.hpp"
#include "runtime/ensemble.hpp"
#include "sim/mass_action.hpp"
#include "sim/ode.hpp"
#include "sim/ssa.hpp"
#include "sync/clock.hpp"
#include "util/matrix.hpp"

namespace {

using namespace mrsc;

core::ReactionNetwork chain_network(std::size_t elements) {
  core::ReactionNetwork net;
  async::ChainSpec spec;
  spec.elements = elements;
  const async::ChainHandles chain = async::build_delay_chain(net, spec);
  net.set_initial(chain.input, 1.0);
  return net;
}

void BM_RhsEvaluation(benchmark::State& state) {
  const core::ReactionNetwork net =
      chain_network(static_cast<std::size_t>(state.range(0)));
  const sim::MassActionSystem system(net);
  std::vector<double> x = net.initial_state();
  std::vector<double> dxdt(x.size());
  for (auto _ : state) {
    system.rhs(x, dxdt);
    benchmark::DoNotOptimize(dxdt.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(system.reaction_count()));
  state.counters["species"] = static_cast<double>(system.species_count());
  state.counters["reactions"] = static_cast<double>(system.reaction_count());
}
BENCHMARK(BM_RhsEvaluation)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_JacobianAssembly(benchmark::State& state) {
  const core::ReactionNetwork net =
      chain_network(static_cast<std::size_t>(state.range(0)));
  const sim::MassActionSystem system(net);
  std::vector<double> x = net.initial_state();
  util::Matrix jac;
  for (auto _ : state) {
    system.jacobian(x, jac);
    benchmark::DoNotOptimize(jac.data().data());
  }
}
BENCHMARK(BM_JacobianAssembly)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_AdaptiveOdeRun(benchmark::State& state) {
  const core::ReactionNetwork net =
      chain_network(static_cast<std::size_t>(state.range(0)));
  sim::OdeOptions options;
  options.t_end = 10.0;
  options.record_interval = 1.0;
  std::size_t steps = 0;
  for (auto _ : state) {
    const sim::OdeResult result = simulate_ode(net, options);
    steps = result.steps_accepted;
    benchmark::DoNotOptimize(result.trajectory.sample_count());
  }
  state.counters["steps"] = static_cast<double>(steps);
}
BENCHMARK(BM_AdaptiveOdeRun)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_SsaDirect(benchmark::State& state) {
  const core::ReactionNetwork net = chain_network(2);
  sim::SsaOptions options;
  options.t_end = 20.0;
  options.omega = static_cast<double>(state.range(0));
  options.method = sim::SsaMethod::kDirect;
  std::uint64_t events = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    options.seed = seed++;
    const sim::SsaResult result = simulate_ssa(net, options);
    events += result.events;
    benchmark::DoNotOptimize(result.final_counts.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_SsaDirect)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_SsaNextReaction(benchmark::State& state) {
  const core::ReactionNetwork net = chain_network(2);
  sim::SsaOptions options;
  options.t_end = 20.0;
  options.omega = static_cast<double>(state.range(0));
  options.method = sim::SsaMethod::kNextReaction;
  std::uint64_t events = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    options.seed = seed++;
    const sim::SsaResult result = simulate_ssa(net, options);
    events += result.events;
    benchmark::DoNotOptimize(result.final_counts.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_SsaNextReaction)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_ClockCycle(benchmark::State& state) {
  core::ReactionNetwork net;
  sync::build_clock(net, {});
  sim::OdeOptions options;
  options.t_end = 30.0;  // ~one period
  options.record_interval = 1.0;
  for (auto _ : state) {
    const sim::OdeResult result = simulate_ode(net, options);
    benchmark::DoNotOptimize(result.steps_accepted);
  }
}
BENCHMARK(BM_ClockCycle)->Unit(benchmark::kMillisecond);

void BM_CompileMovingAverage(benchmark::State& state) {
  for (auto _ : state) {
    auto design = dsp::make_moving_average();
    benchmark::DoNotOptimize(design.network->reaction_count());
  }
}
BENCHMARK(BM_CompileMovingAverage);

// Multi-worker SSA ensemble through the batch runtime. Every worker count
// runs the identical seed set (stream-derived from base_seed), so the work is
// constant and the scaling is pure scheduling. The direct method recomputes
// every propensity on every event, which is the propensity-bound regime the
// compiled engine's hoisted scale factors and CSR kernels target.
sim::SsaOptions ensemble_ssa_options() {
  sim::SsaOptions ssa;
  ssa.t_end = 10.0;
  ssa.omega = 200.0;
  ssa.record_interval = 1.0;
  ssa.method = sim::SsaMethod::kDirect;
  return ssa;
}

core::ReactionNetwork ensemble_network() { return chain_network(8); }

void BM_SsaEnsemble(benchmark::State& state) {
  const core::ReactionNetwork net = ensemble_network();
  runtime::EnsembleOptions options;
  options.replicates = 32;
  options.base_seed = 1;
  options.batch.threads = static_cast<std::size_t>(state.range(0));
  std::size_t ok = 0;
  for (auto _ : state) {
    const runtime::EnsembleResult result =
        runtime::run_ssa_ensemble(net, ensemble_ssa_options(), options);
    ok = result.ok;
    benchmark::DoNotOptimize(result.final_stats.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(options.replicates));
  state.counters["ok"] = static_cast<double>(ok);
}
BENCHMARK(BM_SsaEnsemble)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Compiled-vs-legacy engine on the identical single-replicate workload (same
// seed set, same method). The compiled engine's win is per-event: hoisted
// omega^(1-order) scale factors, CSR propensity kernels, and one shared
// dependency graph instead of a per-run rebuild.
void BM_SsaEngineComparison(benchmark::State& state) {
  const core::ReactionNetwork net = ensemble_network();
  sim::SsaOptions options = ensemble_ssa_options();
  options.engine.kind = state.range(0) == 0 ? sim::EngineKind::kLegacy
                                            : sim::EngineKind::kCompiled;
  std::uint64_t events = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    options.seed = seed++;
    const sim::SsaResult result = simulate_ssa(net, options);
    events += result.events;
    benchmark::DoNotOptimize(result.final_counts.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel(to_string(options.engine.kind));
}
BENCHMARK(BM_SsaEngineComparison)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

/// Measures a 64-replicate ensemble at 1/2/4/8 workers — under both the
/// compiled and the legacy engine — and writes BENCH_runtime.json (path
/// overridable via MRSC_BENCH_RUNTIME_JSON), so the perf trajectory of the
/// batch runtime has a tracked baseline. The top-level keys (wall_seconds,
/// jobs_per_sec, ok) are the compiled engine, which is the production
/// default; the legacy_* keys and per-point speedup record what the engine
/// rewrite buys on the identical workload.
void write_runtime_baseline() {
  const char* path_env = std::getenv("MRSC_BENCH_RUNTIME_JSON");
  const std::string path = path_env ? path_env : "BENCH_runtime.json";
  const core::ReactionNetwork net = ensemble_network();

  struct Measurement {
    double wall = 0.0;
    std::size_t ok = 0;
  };
  auto measure = [&](sim::EngineKind kind, std::size_t workers) {
    sim::SsaOptions ssa = ensemble_ssa_options();
    ssa.engine.kind = kind;
    runtime::EnsembleOptions options;
    options.replicates = 64;
    options.base_seed = 1;
    options.batch.threads = workers;
    const auto start = std::chrono::steady_clock::now();
    const runtime::EnsembleResult result =
        runtime::run_ssa_ensemble(net, ssa, options);
    Measurement m;
    m.wall = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
                 .count();
    m.ok = result.ok;
    return m;
  };

  std::string json = "{\n  \"benchmark\": \"ssa_ensemble_64\",\n"
                     "  \"replicates\": 64,\n  \"points\": [\n";
  const std::size_t worker_counts[] = {1, 2, 4, 8};
  bool first = true;
  std::printf(
      "\nbatch runtime baseline (64-replicate SSA ensemble, "
      "compiled vs legacy engine):\n");
  std::printf("  %-8s %-12s %-12s %-14s %s\n", "workers", "wall [s]",
              "jobs/sec", "legacy [s]", "engine speedup");
  for (const std::size_t workers : worker_counts) {
    const Measurement compiled =
        measure(sim::EngineKind::kCompiled, workers);
    const Measurement legacy = measure(sim::EngineKind::kLegacy, workers);
    const double throughput = 64.0 / compiled.wall;
    const double legacy_throughput = 64.0 / legacy.wall;
    const double speedup = legacy.wall / compiled.wall;
    std::printf("  %-8zu %-12.3f %-12.1f %-14.3f %.2fx  (%zu ok)\n", workers,
                compiled.wall, throughput, legacy.wall, speedup, compiled.ok);
    char buffer[320];
    std::snprintf(
        buffer, sizeof buffer,
        "%s    {\"workers\": %zu, \"wall_seconds\": %.6f, "
        "\"jobs_per_sec\": %.3f, \"ok\": %zu,\n"
        "     \"legacy_wall_seconds\": %.6f, \"legacy_jobs_per_sec\": %.3f, "
        "\"speedup\": %.3f}",
        first ? "" : ",\n", workers, compiled.wall, throughput, compiled.ok,
        legacy.wall, legacy_throughput, speedup);
    json += buffer;
    first = false;
  }
  json += "\n  ]\n}\n";
  std::ofstream out(path);
  if (out) {
    out << json;
    std::printf("baseline written to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_runtime_baseline();
  return 0;
}
