// Distributor-fleet benchmark: merged-ensemble wall clock vs shard count,
// plus one chaos configuration (both shards behind a seeded fault-injecting
// proxy) to price the retry/backoff overhead.
//
// Every row re-proves the fleet's headline contract while it measures: the
// merged report must be byte-identical to the single-shard golden run
// (`byte_identical` is part of the snapshot, so CI trips if the oracle ever
// goes false). Timings and attempt counts drift with the runner and the
// fault schedule; the value gate ignores them.
//
// Writes BENCH_fleet.json (path overridable via MRSC_BENCH_FLEET_JSON).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "fleet/chaos_proxy.hpp"
#include "fleet/fleet.hpp"
#include "serve/server.hpp"

namespace {

using namespace mrsc;

struct Row {
  std::string label;
  std::size_t shards = 0;
  double wall_ms = 0.0;
  double slices_per_s = 0.0;
  std::uint64_t attempts = 0;
  std::uint64_t retries = 0;
  std::uint64_t failures = 0;
  bool byte_identical = false;
};

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

fleet::EnsembleSpec bench_spec() {
  fleet::EnsembleSpec spec;
  spec.design = "counter";
  spec.replicates = 32;
  spec.base_seed = 7;
  spec.t_end = 2.0;
  spec.omega = 100.0;
  return spec;
}

Row measure(const std::string& label,
            const std::vector<fleet::Endpoint>& shards,
            const std::string& golden, std::size_t max_attempts) {
  fleet::FleetOptions options;
  options.shards = shards;
  options.max_attempts = max_attempts;
  options.backoff.base_ms = 2.0;
  options.backoff.cap_ms = 50.0;
  fleet::FleetClient client(options);

  const auto start = std::chrono::steady_clock::now();
  const std::string report = fleet::run_ensemble(client, bench_spec());
  Row row;
  row.label = label;
  row.shards = shards.size();
  row.wall_ms = elapsed_ms(start);
  row.slices_per_s =
      static_cast<double>(bench_spec().replicates) / (row.wall_ms / 1000.0);
  const fleet::FleetCounters counters = client.counters();
  row.attempts = counters.attempts;
  row.retries = counters.retries;
  row.failures = counters.failures;
  row.byte_identical = golden.empty() || report == golden;
  return row;
}

std::string format_row(const Row& row) {
  char buffer[320];
  std::snprintf(
      buffer, sizeof(buffer),
      "    {\"label\": \"%s\", \"shards\": %zu, \"wall_ms\": %.4f, "
      "\"slices_per_s\": %.2f, \"attempts\": %llu, \"retries\": %llu, "
      "\"failures\": %llu, \"byte_identical\": %s}",
      row.label.c_str(), row.shards, row.wall_ms, row.slices_per_s,
      static_cast<unsigned long long>(row.attempts),
      static_cast<unsigned long long>(row.retries),
      static_cast<unsigned long long>(row.failures),
      row.byte_identical ? "true" : "false");
  return buffer;
}

}  // namespace

int main() {
  std::printf("== fleet: merged ensemble vs shard count (%zu replicates)\n\n",
              bench_spec().replicates);

  // Four in-process shards; each configuration uses a prefix of them. The
  // processes stay warm across rows, so the sweep prices distribution, not
  // server startup — but the golden row runs against a cold cache like
  // every other row would on a fresh fleet.
  std::vector<std::unique_ptr<serve::Server>> servers;
  std::vector<fleet::Endpoint> endpoints;
  for (int i = 0; i < 4; ++i) {
    serve::ServerOptions options;
    options.workers = 2;
    servers.push_back(std::make_unique<serve::Server>(options));
    servers.back()->start();
    endpoints.push_back({"127.0.0.1", servers.back()->port()});
  }

  // Golden bytes from one shard (this is also the 1-shard timing row).
  fleet::FleetOptions golden_options;
  golden_options.shards = {endpoints[0]};
  fleet::FleetClient golden_client(golden_options);
  const auto golden_start = std::chrono::steady_clock::now();
  const std::string golden =
      fleet::run_ensemble(golden_client, bench_spec());
  Row one;
  one.label = "clean";
  one.shards = 1;
  one.wall_ms = elapsed_ms(golden_start);
  one.slices_per_s =
      static_cast<double>(bench_spec().replicates) / (one.wall_ms / 1000.0);
  one.attempts = golden_client.counters().attempts;
  one.byte_identical = true;

  std::vector<Row> rows;
  rows.push_back(one);
  rows.push_back(measure("clean", {endpoints[0], endpoints[1]}, golden, 4));
  rows.push_back(measure(
      "clean", {endpoints[0], endpoints[1], endpoints[2], endpoints[3]},
      golden, 4));

  // Chaos row: two shards, both behind proxies that drop, delay, and
  // truncate on a seeded schedule.
  fleet::ChaosFaults faults;
  faults.drop = 0.15;
  faults.truncate = 0.15;
  faults.delay = 0.1;
  faults.delay_ms = 5.0;
  fleet::ChaosProxy proxy_a(endpoints[0], faults, 11);
  fleet::ChaosProxy proxy_b(endpoints[1], faults, 12);
  proxy_a.start();
  proxy_b.start();
  rows.push_back(measure("chaos",
                         {{"127.0.0.1", proxy_a.port()},
                          {"127.0.0.1", proxy_b.port()}},
                         golden, 10));
  proxy_a.stop();
  proxy_b.stop();

  std::printf("%-8s %7s %9s %13s %9s %8s %9s %6s\n", "label", "shards",
              "wall_ms", "slices_per_s", "attempts", "retries", "failures",
              "bytes");
  bool all_identical = true;
  for (const Row& row : rows) {
    std::printf("%-8s %7zu %9.2f %13.1f %9llu %8llu %9llu %6s\n",
                row.label.c_str(), row.shards, row.wall_ms, row.slices_per_s,
                static_cast<unsigned long long>(row.attempts),
                static_cast<unsigned long long>(row.retries),
                static_cast<unsigned long long>(row.failures),
                row.byte_identical ? "same" : "DIFF");
    all_identical = all_identical && row.byte_identical;
  }
  std::printf("\n");

  const char* path_env = std::getenv("MRSC_BENCH_FLEET_JSON");
  const std::string path = path_env ? path_env : "BENCH_fleet.json";
  std::string json = "{\n  \"benchmark\": \"fleet_ensemble\",\n";
  json += "  \"design\": \"" + bench_spec().design + "\",\n";
  json += "  \"replicates\": " + std::to_string(bench_spec().replicates) +
          ",\n  \"rows\": [\n";
  for (std::size_t r = 0; r < rows.size(); ++r) {
    json += format_row(rows[r]);
    json += r + 1 < rows.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out << json;
  std::printf("report written to %s\n", path.c_str());

  for (const auto& server : servers) server->stop();
  if (!all_identical) {
    std::fprintf(stderr, "FAIL: a merged report diverged from the golden "
                         "single-shard bytes\n");
    return 1;
  }
  return 0;
}
