// Compile-pipeline benchmark: what does -O1 buy on every built-in design?
//
// For each design the bench compiles at -O0 and -O1 and reports the
// species/reaction deltas plus per-pass wall time; two extra rows show the
// optimizations that need a caller promise or a raw network to fire:
//
//   * first_difference with --assume-zero x_n: the unused negative input
//     rail's whole cone is dead-species-eliminated.
//   * a raw rate-tiled network (the "write the same reaction k times to
//     multiply its rate" idiom): coalesce-duplicates folds the copies into
//     one reaction with a summed rate multiplier.
//
// Writes BENCH_compile.json (path overridable via MRSC_BENCH_COMPILE_JSON).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "compile/passes.hpp"
#include "compile/report.hpp"
#include "core/builder.hpp"
#include "dsp/counter.hpp"
#include "dsp/filters.hpp"
#include "fsm/fsm.hpp"

namespace {

using namespace mrsc;

struct Row {
  std::string name;
  compile::CompileReport report;
};

compile::CompileOptions o1_options(compile::CompileReport* report) {
  compile::CompileOptions options;
  options.opt = compile::OptLevel::kO1;
  options.report = report;
  return options;
}

Row compile_builtin(const std::string& name) {
  Row row;
  row.name = name;
  const compile::CompileOptions options = o1_options(&row.report);
  if (name == "counter") {
    core::ReactionNetwork net;
    (void)dsp::build_counter(net, dsp::CounterSpec{}, options);
  } else if (name == "seqdet_101") {
    core::ReactionNetwork net;
    (void)fsm::build_fsm(net, fsm::make_sequence_detector("101"), options);
  } else if (name == "moving_average") {
    (void)dsp::make_moving_average({}, options);
  } else if (name == "iir_biquad") {
    (void)dsp::make_second_order_iir({}, options);
  } else if (name == "first_difference") {
    (void)dsp::make_first_difference({}, options);
  } else if (name == "delay_4") {
    (void)dsp::make_delay_line(4, {}, options);
  }
  row.report.design = name;
  return row;
}

Row compile_assume_zero_first_difference() {
  Row row;
  row.name = "first_difference+assume_zero_x_n";
  compile::CompileOptions options = o1_options(&row.report);
  options.assume_zero_inputs = {"x_n"};
  (void)dsp::make_first_difference({}, options);
  row.report.design = row.name;
  return row;
}

// The rate-tiling idiom: each indicator generator is written `tiles` times
// so it fires at `tiles` times the slow rate. Coalescing recovers one
// reaction per generator with rate_multiplier == tiles.
Row compile_rate_tiled_raw(std::size_t members, std::size_t tiles) {
  Row row;
  row.name = "raw_rate_tiled";
  core::ReactionNetwork net;
  core::NetworkBuilder builder(net);
  std::vector<core::SpeciesId> roots;
  for (std::size_t m = 0; m < members; ++m) {
    const std::string member = "M" + std::to_string(m);
    const std::string ind = "I" + std::to_string(m);
    builder.species(member, 1.0);
    builder.species(ind, 0.0);
    for (std::size_t t = 0; t < tiles; ++t) {
      builder.reaction("0 -> " + ind, core::RateCategory::kSlow,
                       member + ".gen");
    }
    builder.reaction(ind + " + " + member + " -> " + member,
                     core::RateCategory::kFast, member + ".absorb");
    roots.push_back(*net.find_species(member));
  }
  auto result = compile::optimize_network(net, roots);
  row.report = std::move(result.report);
  row.report.design = row.name;
  return row;
}

void print_row(const Row& row) {
  const auto& b = row.report.before;
  const auto& a = row.report.after;
  std::printf("  %-34s %4zu -> %-4zu %4zu -> %-4zu  %8.3fms\n",
              row.name.c_str(), b.species, a.species, b.reactions,
              a.reactions, row.report.pass_seconds * 1e3);
  for (const compile::PassStats& pass : row.report.passes) {
    if (!pass.changed) continue;
    std::printf("      %-30s %4zu -> %-4zu %4zu -> %-4zu\n",
                pass.name.c_str(), pass.species_before, pass.species_after,
                pass.reactions_before, pass.reactions_after);
  }
}

std::string trim_newline(std::string text) {
  while (!text.empty() && text.back() == '\n') text.pop_back();
  return text;
}

}  // namespace

int main() {
  std::printf("== compile pipeline: -O1 deltas per design\n\n");
  std::printf("  %-34s %12s %12s %10s\n", "design", "species",
              "reactions", "passes");

  std::vector<Row> rows;
  for (const char* name : {"moving_average", "iir_biquad", "first_difference",
                           "delay_4", "counter", "seqdet_101"}) {
    rows.push_back(compile_builtin(name));
  }
  rows.push_back(compile_assume_zero_first_difference());
  rows.push_back(compile_rate_tiled_raw(6, 4));
  for (const Row& row : rows) print_row(row);

  std::size_t reduced = 0;
  for (const Row& row : rows) {
    if (row.report.after.reactions < row.report.before.reactions) ++reduced;
  }
  std::printf("\n%zu of %zu cases shrank their reaction count.\n", reduced,
              rows.size());

  const char* path_env = std::getenv("MRSC_BENCH_COMPILE_JSON");
  const std::string path = path_env ? path_env : "BENCH_compile.json";
  std::string json = "{\n  \"benchmark\": \"compile_pipeline\",\n"
                     "  \"designs\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    json += trim_newline(rows[i].report.to_json());
    json += i + 1 < rows.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out << json;
  std::printf("report written to %s\n", path.c_str());
  return 0;
}
