// Scenario-scale benchmark: how compile/lint/sim/verify cost grows with
// circuit size across the registry's four parametric generators.
//
// Every point is resolved through the same ScenarioRegistry the CLIs use, so
// the sweep measures the real end-to-end path: build the design (compile),
// run the full static-check registry over it (lint), integrate the ODE
// semantics for a fixed horizon (sim), and hold the compiled engine to
// bitwise equivalence with the legacy paths for one seed (verify).
//
// Writes BENCH_scale.json (path overridable via MRSC_BENCH_SCALE_JSON).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"
#include "scenario/registry.hpp"
#include "sim/ode.hpp"
#include "verify/engine_equivalence.hpp"

namespace {

using namespace mrsc;

struct Point {
  std::string spec;
  std::size_t n = 0;
  std::size_t species = 0;
  std::size_t reactions = 0;
  double compile_ms = 0.0;
  double lint_ms = 0.0;
  double sim_ms = 0.0;
  double verify_ms = 0.0;
};

struct Sweep {
  std::string generator;
  std::vector<Point> points;
};

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

Point measure(const std::string& generator, std::size_t n) {
  Point point;
  point.spec = generator + "(" + std::to_string(n) + ")";
  point.n = n;

  auto start = std::chrono::steady_clock::now();
  scenario::ResolvedScenario resolved =
      scenario::ScenarioRegistry::global().resolve(point.spec);
  point.compile_ms = elapsed_ms(start);

  const core::ReactionNetwork& net = *resolved.design.network;
  point.species = net.species_count();
  point.reactions = net.reaction_count();

  start = std::chrono::steady_clock::now();
  lint::LintInput input = lint::LintInput::from_design(
      net, resolved.design.info, resolved.scenario.name);
  input.composition = resolved.design.composition.get();
  const lint::LintReport report = lint::run_lint(input);
  point.lint_ms = elapsed_ms(start);
  (void)report;

  start = std::chrono::steady_clock::now();
  sim::OdeOptions ode;
  ode.t_end = 5.0;
  ode.record_interval = 0.1;
  const sim::OdeResult run = sim::simulate_ode(net, ode);
  point.sim_ms = elapsed_ms(start);
  (void)run;

  start = std::chrono::steady_clock::now();
  verify::EngineEquivalenceOptions equivalence;
  equivalence.t_end = 1.0;
  equivalence.record_interval = 0.1;
  equivalence.omega = 50.0;
  equivalence.seed = 1;
  const auto violations = verify::check_engine_equivalence(net, equivalence);
  point.verify_ms = elapsed_ms(start);
  if (!violations.empty()) {
    std::fprintf(stderr, "engine equivalence violated on %s (%zu findings)\n",
                 point.spec.c_str(), violations.size());
  }
  return point;
}

std::string format_point(const Point& point) {
  char buffer[320];
  std::snprintf(buffer, sizeof(buffer),
                "    {\"spec\": \"%s\", \"n\": %zu, \"species\": %zu, "
                "\"reactions\": %zu, \"compile_ms\": %.4f, \"lint_ms\": %.4f, "
                "\"sim_ms\": %.4f, \"verify_ms\": %.4f}",
                point.spec.c_str(), point.n, point.species, point.reactions,
                point.compile_ms, point.lint_ms, point.sim_ms,
                point.verify_ms);
  return buffer;
}

}  // namespace

int main() {
  std::printf("== scenario scale: pipeline cost vs circuit size\n\n");

  const std::vector<std::pair<std::string, std::vector<std::size_t>>> plan = {
      {"counter", {2, 4, 6, 8}},
      {"delay_chain", {2, 4, 8, 16}},
      {"fsm_wide", {4, 8, 16, 32}},
      {"cascade", {2, 3, 4, 5}},
  };

  std::vector<Sweep> sweeps;
  for (const auto& [generator, sizes] : plan) {
    Sweep sweep;
    sweep.generator = generator;
    std::printf("%-16s %4s %8s %10s %12s %10s %9s %10s\n", generator.c_str(),
                "n", "species", "reactions", "compile_ms", "lint_ms",
                "sim_ms", "verify_ms");
    for (const std::size_t n : sizes) {
      const Point point = measure(generator, n);
      std::printf("%-16s %4zu %8zu %10zu %12.3f %10.3f %9.3f %10.3f\n", "",
                  point.n, point.species, point.reactions, point.compile_ms,
                  point.lint_ms, point.sim_ms, point.verify_ms);
      sweep.points.push_back(point);
    }
    std::printf("\n");
    sweeps.push_back(std::move(sweep));
  }

  const char* path_env = std::getenv("MRSC_BENCH_SCALE_JSON");
  const std::string path = path_env ? path_env : "BENCH_scale.json";
  std::string json = "{\n  \"benchmark\": \"scenario_scale\",\n"
                     "  \"generators\": [\n";
  for (std::size_t g = 0; g < sweeps.size(); ++g) {
    json += "  {\"generator\": \"" + sweeps[g].generator +
            "\", \"points\": [\n";
    for (std::size_t p = 0; p < sweeps[g].points.size(); ++p) {
      json += format_point(sweeps[g].points[p]);
      json += p + 1 < sweeps[g].points.size() ? ",\n" : "\n";
    }
    json += "  ]}";
    json += g + 1 < sweeps.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out << json;
  std::printf("report written to %s\n", path.c_str());
  return 0;
}
