// Robustness-margin benchmark: how much rate perturbation does each design
// tolerate before its logic output diverges from the exact reference?
//
// For every built-in design this bench sweeps three structured fault kinds
// (global rate jitter, clock phase skew, per-species leaks) over a coarse
// intensity grid and reports the robustness margin — the largest intensity
// at which every seeded trial still matches the unperturbed oracle. This is
// the quantitative counterpart of the paper's "any rates work as long as
// fast >> slow" claim: jitter margins are wide, leak margins are narrow.
//
// Writes BENCH_stress.json (path overridable via MRSC_BENCH_STRESS_JSON).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "stress/campaign.hpp"
#include "stress/fault.hpp"

namespace {

using namespace mrsc;

struct Row {
  stress::CampaignResult result;
  std::size_t mismatches = 0;
  std::size_t sim_failures = 0;
  std::size_t recovered = 0;
};

Row run(stress::Design design, stress::FaultKind fault,
        std::vector<double> grid) {
  stress::CampaignConfig config;
  config.design = design;
  config.fault = fault;
  config.intensities = std::move(grid);
  config.trials = 2;
  config.threads = 0;  // all cores; results are thread-count invariant
  Row row;
  row.result = stress::run_campaign(config);
  for (const stress::IntensityResult& point : row.result.intensities) {
    row.mismatches += point.mismatch;
    row.sim_failures += point.sim_failure;
    row.recovered += point.recovered;
  }
  return row;
}

std::string trim_newline(std::string text) {
  while (!text.empty() && text.back() == '\n') text.pop_back();
  return text;
}

}  // namespace

int main() {
  std::printf("== robustness margins: fault intensity each design survives\n\n");
  std::printf("  %-18s %-12s %10s %6s %10s %8s %5s\n", "design", "fault",
              "margin", "found", "mismatches", "simfail", "recov");

  // Coarse grids keep the bench under a minute: jitter/skew are log-normal
  // sigmas, leak intensity is the leak rate as a fraction of k_slow.
  const std::vector<double> jitter_grid = {0.05, 0.1, 0.2, 0.4};
  const std::vector<double> leak_grid = {0.0001, 0.0003, 0.001, 0.003};

  std::vector<Row> rows;
  for (const stress::Design design :
       {stress::Design::kCounter, stress::Design::kMovingAverage,
        stress::Design::kSequenceDetector, stress::Design::kAsyncChain}) {
    rows.push_back(run(design, stress::FaultKind::kRateJitter, jitter_grid));
    rows.push_back(run(design, stress::FaultKind::kClockSkew, jitter_grid));
    rows.push_back(run(design, stress::FaultKind::kLeak, leak_grid));
  }

  for (const Row& row : rows) {
    std::printf("  %-18s %-12s %10.4g %6s %10zu %8zu %5zu\n",
                stress::to_string(row.result.design),
                stress::to_string(row.result.fault), row.result.margin,
                row.result.margin_found ? "yes" : "no", row.mismatches,
                row.sim_failures, row.recovered);
  }

  std::size_t with_margin = 0;
  for (const Row& row : rows) {
    if (row.result.margin_found) ++with_margin;
  }
  std::printf("\n%zu of %zu sweeps hold a nonzero robustness margin.\n",
              with_margin, rows.size());

  const char* path_env = std::getenv("MRSC_BENCH_STRESS_JSON");
  const std::string path = path_env ? path_env : "BENCH_stress.json";
  std::string json = "{\n  \"benchmark\": \"stress_margins\",\n"
                     "  \"sweeps\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    json += trim_newline(rows[i].result.to_json());
    json += i + 1 < rows.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out << json;
  std::printf("report written to %s\n", path.c_str());
  return 0;
}
