// Experiment T1: rate independence.
//
// The paper's central claim: "the computation is exact and independent of
// the specific reaction rates ... it does not matter how fast any fast
// reaction is relative to another, or how slow any slow reaction is relative
// to another — only that fast reactions are fast relative to slow
// reactions." This bench operationalizes the claim two ways on two designs:
//
//   (a) sweep the k_fast/k_slow separation ratio over four decades, and
//   (b) at a fixed separation, jitter every individual rate constant by a
//       log-uniform factor (kinetic constants "are not constant at all").
#include <cstdio>

#include "analysis/harness.hpp"
#include "analysis/metrics.hpp"
#include "analysis/sweep.hpp"
#include "async/chain.hpp"
#include "dsp/filters.hpp"
#include "sim/ode.hpp"

namespace {
using namespace mrsc;

// Error metric for the async chain: 1 - delivered output for a unit input.
double chain_experiment(const core::RatePolicy& policy, double jitter,
                        std::uint64_t seed) {
  core::ReactionNetwork net;
  async::ChainSpec spec;
  spec.elements = 2;
  const async::ChainHandles chain = async::build_delay_chain(net, spec);
  net.set_initial(chain.input, 1.0);
  net.set_rate_policy(policy);
  if (jitter > 1.0) {
    util::Rng rng(seed);
    analysis::apply_rate_jitter(net, jitter, rng);
  }
  sim::OdeOptions options;
  options.t_end = 200.0 / policy.k_slow;
  // Extreme separations are stiff; the implicit integrator handles them.
  if (policy.k_fast / policy.k_slow > 2e4) {
    options.method = sim::OdeMethod::kBackwardEuler;
    options.dt = 2e-3 / policy.k_slow;
  }
  const sim::OdeResult run = sim::simulate_ode(net, options);
  return 1.0 - run.trajectory.final_value(chain.output);
}

// Error metric for the moving-average filter: max output error over a short
// input sequence.
double filter_experiment(const core::RatePolicy& policy, double jitter,
                         std::uint64_t seed) {
  auto design = dsp::make_moving_average();
  design.network->set_rate_policy(policy);
  if (jitter > 1.0) {
    util::Rng rng(seed);
    analysis::apply_rate_jitter(*design.network, jitter, rng);
  }
  const std::vector<double> x = {1.0, 0.0, 1.0, 0.5};
  analysis::ClockedRunOptions options;
  options.ode.t_end = 2.5 * analysis::suggest_t_end({}, policy, x.size());
  if (policy.k_fast / policy.k_slow > 2e4) {
    options.ode.method = sim::OdeMethod::kBackwardEuler;
    options.ode.dt = 2e-3 / policy.k_slow;
  }
  const auto result = analysis::run_clocked_circuit(
      *design.network, design.circuit, "x", x, "y", options);
  return analysis::max_abs_error(result.outputs,
                                 dsp::reference_moving_average(x));
}

}  // namespace

int main() {
  std::printf("== T1a: async delay chain — undelivered fraction vs rate "
              "separation\n\n");
  // All four sweeps fan their grid points out across the batch runtime
  // (threads = 0 selects the hardware concurrency); per-point seeds are fixed
  // up front, so the tables are identical to the historical serial run.
  analysis::RateSweepConfig chain_config;
  chain_config.ratios = {10.0, 100.0, 1000.0, 10000.0, 100000.0};
  chain_config.jitter_factors = {1.0};
  chain_config.threads = 0;
  std::printf("%s\n",
              analysis::format_sweep_table(
                  analysis::run_rate_sweep(chain_config, chain_experiment),
                  "1 - delivered Y")
                  .c_str());
  std::printf(
      "(Accuracy improves with the separation and is already usable at two\n"
      " decades; the ratio — not the absolute rates — is what matters.)\n\n");

  std::printf("== T1b: async delay chain — per-reaction rate jitter at "
              "ratio 1000\n\n");
  analysis::RateSweepConfig jitter_config;
  jitter_config.ratios = {1000.0};
  jitter_config.jitter_factors = {1.0, 1.5, 2.0, 3.0};
  jitter_config.threads = 0;
  std::printf("%s\n",
              analysis::format_sweep_table(
                  analysis::run_rate_sweep(jitter_config, chain_experiment),
                  "1 - delivered Y")
                  .c_str());

  std::printf("== T1c: moving-average filter — max output error vs rate "
              "separation\n\n");
  analysis::RateSweepConfig filter_config;
  filter_config.ratios = {100.0, 1000.0, 10000.0};
  filter_config.jitter_factors = {1.0};
  filter_config.threads = 0;
  std::printf("%s\n",
              analysis::format_sweep_table(
                  analysis::run_rate_sweep(filter_config, filter_experiment),
                  "max |y error|")
                  .c_str());

  std::printf("== T1d: moving-average filter — per-reaction jitter at "
              "ratio 1000\n\n");
  analysis::RateSweepConfig filter_jitter;
  filter_jitter.ratios = {1000.0};
  filter_jitter.jitter_factors = {1.0, 1.5, 2.0};
  filter_jitter.threads = 0;
  std::printf("%s\n",
              analysis::format_sweep_table(
                  analysis::run_rate_sweep(filter_jitter, filter_experiment),
                  "max |y error|")
                  .c_str());
  std::printf(
      "(The computation tolerates every individual rate constant drifting\n"
      " by 2-3x in either direction — robustness no scheme that depends on\n"
      " specific kinetic constants could offer.)\n");
  return 0;
}
