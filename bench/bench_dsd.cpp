// Experiment T3: DNA strand displacement as the experimental chassis.
//
// Compiles this library's constructions to DSD gate cascades
// (Soloveichik-style, fuel species at C0) and reports:
//   (a) the size blow-up table — species/reactions before vs after, and
//   (b) behavioural fidelity — trajectory deviation of a compiled network
//       against its formal original, as a function of the fuel supply.
#include <cmath>
#include <cstdio>

#include "async/chain.hpp"
#include "core/builder.hpp"
#include "dna/dsd.hpp"
#include "dsp/filters.hpp"
#include "sim/ode.hpp"
#include "sync/clock.hpp"

namespace {
using namespace mrsc;

void blow_up_row(const char* name, const core::ReactionNetwork& formal) {
  const dna::DsdCompilation compiled = dna::compile_to_dsd(formal);
  std::printf("%-22s %8zu %10zu %10zu %10zu %8.1fx\n", name,
              compiled.original_stats.species,
              compiled.original_stats.reactions,
              compiled.compiled_stats.species,
              compiled.compiled_stats.reactions,
              static_cast<double>(compiled.compiled_stats.reactions) /
                  static_cast<double>(compiled.original_stats.reactions));
}

core::ReactionNetwork cascade() {
  core::ReactionNetwork net;
  core::NetworkBuilder b(net);
  b.species("A", 1.0);
  b.species("D", 0.4);
  b.reaction("A -> B", 1.0);
  b.reaction("B -> C", 0.5);
  b.reaction("B + D -> E", 2.0);
  return net;
}

}  // namespace

int main() {
  std::printf("== T3a: DSD compilation blow-up (fuel C0=100)\n\n");
  std::printf("%-22s %8s %10s %10s %10s %8s\n", "design", "species",
              "reactions", "dsd spec.", "dsd rxn.", "factor");

  {
    core::ReactionNetwork net;
    sync::build_clock(net, {});
    blow_up_row("clock", net);
  }
  {
    core::ReactionNetwork net;
    async::ChainSpec spec;
    spec.elements = 2;
    async::build_delay_chain(net, spec);
    blow_up_row("delay chain (n=2)", net);
  }
  {
    auto design = dsp::make_moving_average();
    blow_up_row("moving-average", *design.network);
  }
  {
    auto design = dsp::make_second_order_iir();
    blow_up_row("second-order IIR", *design.network);
  }
  std::printf(
      "\n(Every reaction becomes 2 DSD steps if unimolecular, 4 if\n"
      " bimolecular, plus fuel/intermediate/waste species — the cost of a\n"
      " physically implementable chassis.)\n\n");

  std::printf("== T3b: behavioural fidelity vs fuel supply (cascade "
              "A->B->C, B+D->E)\n\n");
  const core::ReactionNetwork formal = cascade();
  sim::OdeOptions ode;
  ode.t_end = 6.0;
  const sim::OdeResult formal_run = sim::simulate_ode(formal, ode);

  std::printf("%-10s %-14s %-14s\n", "fuel C0", "max |dC|", "final C err");
  for (const double fuel : {3.0, 10.0, 30.0, 100.0, 300.0}) {
    dna::DsdOptions options;
    options.fuel_initial = fuel;
    options.q_max = 2000.0;
    const dna::DsdCompilation compiled = dna::compile_to_dsd(formal, options);
    const sim::OdeResult dsd_run = sim::simulate_ode(compiled.network, ode);
    const core::SpeciesId cf = *formal.find_species("C");
    const core::SpeciesId cd = *compiled.network.find_species("C");
    double worst = 0.0;
    for (double t = 0.25; t <= 6.0; t += 0.25) {
      worst = std::max(worst, std::abs(dsd_run.trajectory.value_at(t, cd) -
                                       formal_run.trajectory.value_at(t, cf)));
    }
    const double final_err = std::abs(dsd_run.trajectory.final_value(cd) -
                                      formal_run.trajectory.final_value(cf));
    std::printf("%-10.0f %-14.4f %-14.4f\n", fuel, worst, final_err);
  }
  std::printf(
      "\n(Fidelity improves with the fuel supply: while fuels stay near C0\n"
      " the compiled kinetics match the formal network; scarce fuels starve\n"
      " the gates. This is the fuel-provisioning rule for a wet-lab run.)\n");
  return 0;
}
