// Experiment F8 (extension): self-timed computation pipelines.
//
// The companion paper's program completed: combinational computation *between*
// self-timed delay elements, with no clock anywhere. Completion is detected
// chemically — the in-flight wire species are members of the blue color
// category, so the handshake cannot advance until the arithmetic has
// finished. This bench runs the moving-average filter in the self-timed
// discipline and compares it, cycle for cycle, against the clocked version
// and the exact reference.
#include <cstdio>
#include <vector>

#include "analysis/harness.hpp"
#include "analysis/metrics.hpp"
#include "async/circuit.hpp"
#include "dsp/filters.hpp"

namespace {
using namespace mrsc;

struct AsyncMovingAverage {
  std::unique_ptr<core::ReactionNetwork> network;
  async::CompiledAsyncCircuit circuit;
};

AsyncMovingAverage make_async_moving_average() {
  async::AsyncCircuitBuilder builder;
  const sync::Sig x = builder.input("x");
  const auto copies = builder.fanout(x, 2);
  const sync::Reg reg = builder.add_register("d", 0.0);
  const sync::Sig prev = builder.read(reg);
  builder.write(reg, copies[1]);
  builder.output("y", builder.scale(builder.add(copies[0], prev), 1, 1));
  AsyncMovingAverage design;
  design.network = std::make_unique<core::ReactionNetwork>();
  design.circuit = builder.compile_async(*design.network, "ama");
  return design;
}

}  // namespace

int main() {
  std::printf("== F8: self-timed moving-average filter (no clock)\n\n");

  AsyncMovingAverage design = make_async_moving_average();
  std::printf("compiled: %zu species, %zu reactions (heartbeat register "
              "included)\n\n",
              design.network->species_count(),
              design.network->reaction_count());

  const std::vector<double> x = {1.0, 1.0, 2.0, 0.0, 0.5, 1.5, 0.0, 1.0};
  analysis::ClockedRunOptions options;
  options.ode.t_end = 150.0 * static_cast<double>(x.size() + 3);
  const auto result = analysis::run_async_circuit(
      *design.network, design.circuit, "x", x, "y", options);
  const auto expected = dsp::reference_moving_average(x);

  std::printf("measured handshake cycle: %.2f time units (data-dependent, "
              "no clock)\n\n",
              result.clock_period);
  std::printf("%-4s %-8s %-12s %-12s %-10s\n", "n", "x[n]", "y[n] (mol)",
              "y[n] (ref)", "error");
  for (std::size_t n = 0; n < x.size(); ++n) {
    std::printf("%-4zu %-8.2f %-12.4f %-12.4f %-10.2e\n", n, x[n],
                result.outputs[n], expected[n],
                result.outputs[n] - expected[n]);
  }
  std::printf("\nmax |error| = %.3e\n",
              analysis::max_abs_error(result.outputs, expected));

  std::printf("\n== F8b: clocked vs self-timed, same filter\n\n");
  auto clocked = dsp::make_moving_average();
  analysis::ClockedRunOptions clocked_options;
  clocked_options.ode.t_end = analysis::suggest_t_end(
      {}, clocked.network->rate_policy(), x.size());
  const auto clocked_result = analysis::run_clocked_circuit(
      *clocked.network, clocked.circuit, "x", x, "y", clocked_options);

  std::printf("%-14s %-10s %-12s %-14s\n", "discipline", "species",
              "cycle", "max error");
  std::printf("%-14s %-10zu %-12.2f %-14.3e\n", "clocked",
              clocked.network->species_count(), clocked_result.clock_period,
              analysis::max_abs_error(clocked_result.outputs, expected));
  std::printf("%-14s %-10zu %-12.2f %-14.3e\n", "self-timed",
              design.network->species_count(), result.clock_period,
              analysis::max_abs_error(result.outputs, expected));
  std::printf(
      "\n(The self-timed pipeline needs no oscillator: the heartbeat's red\n"
      " pulse opens the release window and the global absence indicators\n"
      " close it only when every in-flight species has drained. Downstream\n"
      " must consume outputs: an unread red output stalls the handshake.)\n");

  std::printf("\n== F8c: data-dependent timing — the handshake stretches "
              "with the data\n\n");
  std::printf("%-12s %-16s\n", "amplitude", "handshake cycle");
  for (const double amplitude : {0.5, 1.0, 2.0, 4.0}) {
    AsyncMovingAverage swept = make_async_moving_average();
    const std::vector<double> xs(5, amplitude);
    analysis::ClockedRunOptions swept_options;
    swept_options.ode.t_end = 300.0 * static_cast<double>(xs.size() + 3);
    const auto swept_result = analysis::run_async_circuit(
        *swept.network, swept.circuit, "x", xs, "y", swept_options);
    std::printf("%-12.1f %-16.2f\n", amplitude, swept_result.clock_period);
  }
  std::printf(
      "\n(The handshake adapts to the data at both extremes: large values\n"
      " take longer to release, and small values crawl through the\n"
      " quadratic feedback transfers — in each case the phases simply wait.\n"
      " A fixed clock would instead fail once the data outgrew its period.)\n");
  return 0;
}
