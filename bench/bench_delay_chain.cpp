// Experiment F2: the two-delay-element chain (companion paper, Figure 1(c)).
//
// An input quantity X is placed in B_0 and handed through the color-coded
// stages R_1, G_1, B_1, R_2, G_2, B_2 to the output Y = R_3 by the
// self-timed three-phase handshake. The figure shows the expected crisp
// alternation of transfer phases; the table quantifies stage peaks, arrival
// time, and delivered fraction.
#include <cstdio>
#include <variant>
#include <vector>

#include "analysis/plot.hpp"
#include "async/chain.hpp"
#include "core/network.hpp"
#include "scenario/registry.hpp"
#include "sim/ode.hpp"

namespace {
using namespace mrsc;
}  // namespace

int main() {
  std::printf("== F2: two-delay-element self-timed chain (X = 1.0)\n");
  std::printf("   (k_slow=1, k_fast=1000; companion Fig. 1(c))\n\n");

  scenario::ResolvedScenario resolved =
      scenario::ScenarioRegistry::global().resolve("delay_chain(2)");
  core::ReactionNetwork& net = *resolved.design.network;
  const async::ChainHandles& chain =
      std::get<scenario::ChainArtifacts>(resolved.artifacts).handles;
  net.set_initial(chain.input, 1.0);

  sim::OdeOptions options;
  options.t_end = 70.0;
  options.record_interval = 0.2;
  const sim::OdeResult run = sim::simulate_ode(net, options);

  const std::vector<core::SpeciesId> ids = {
      chain.input,   chain.red[0],  chain.green[0], chain.blue[0],
      chain.red[1],  chain.green[1], chain.blue[1],  chain.output};
  analysis::AsciiPlotOptions plot;
  plot.width = 110;
  plot.height = 16;
  plot.y_min = 0.0;
  plot.y_max = 1.05;
  std::printf("%s\n",
              analysis::plot_trajectory(run.trajectory, net, ids, plot)
                  .c_str());

  std::printf("%-8s %-10s %-12s\n", "stage", "peak", "peak time");
  for (const core::SpeciesId id : ids) {
    double peak = -1.0;
    double peak_time = 0.0;
    for (std::size_t k = 0; k < run.trajectory.sample_count(); ++k) {
      if (run.trajectory.value(k, id) > peak) {
        peak = run.trajectory.value(k, id);
        peak_time = run.trajectory.time(k);
      }
    }
    std::printf("%-8s %-10.3f %-12.1f\n", net.species_name(id).c_str(), peak,
                peak_time);
  }

  std::printf("\ndelivered Y at t=%.0f: %.4f of 1.0\n", options.t_end,
              run.trajectory.final_value(chain.output));
  std::printf(
      "(The residual sits in the last element: once Y — a red type — is\n"
      " present it suppresses the red-absence indicator that gates the\n"
      " final green-to-blue step, stalling the last ~1%% of the transfer.)\n");

  std::printf("\n== F2b: chain length scaling\n\n");
  std::printf("%-10s %-14s %-14s\n", "elements", "delivered Y", "t_90%%");
  for (const std::size_t n : {1u, 2u, 3u, 4u, 6u}) {
    scenario::ResolvedScenario long_resolved =
        scenario::ScenarioRegistry::global().resolve(
            "delay_chain(" + std::to_string(n) + ")");
    core::ReactionNetwork& long_net = *long_resolved.design.network;
    const async::ChainHandles& long_chain =
        std::get<scenario::ChainArtifacts>(long_resolved.artifacts).handles;
    long_net.set_initial(long_chain.input, 1.0);
    sim::OdeOptions long_options;
    long_options.t_end = 40.0 * static_cast<double>(n + 1);
    long_options.record_interval = 0.2;
    const sim::OdeResult long_run = sim::simulate_ode(long_net, long_options);
    double t90 = -1.0;
    for (std::size_t k = 0; k < long_run.trajectory.sample_count(); ++k) {
      if (long_run.trajectory.value(k, long_chain.output) > 0.9) {
        t90 = long_run.trajectory.time(k);
        break;
      }
    }
    std::printf("%-10zu %-14.4f %-14.1f\n", n,
                long_run.trajectory.final_value(long_chain.output), t90);
  }
  std::printf("(Arrival time grows linearly with the chain length: three\n"
              " globally ordered phases per element.)\n");
  return 0;
}
