// Experiment F3: the moving-average filter, the flagship clocked-DSP example
// of this line of work (ICCAD'10 / DAC'11): y[n] = (x[n] + x[n-1]) / 2,
// computed by molecular reactions synchronized to the molecular clock, one
// input sample accepted and one output produced per clock cycle.
#include <cstdio>
#include <vector>

#include "analysis/harness.hpp"
#include "analysis/metrics.hpp"
#include "analysis/plot.hpp"
#include "dsp/filters.hpp"

namespace {
using namespace mrsc;
}  // namespace

int main() {
  std::printf("== F3: moving-average filter y[n] = (x[n] + x[n-1]) / 2\n");
  std::printf("   (k_slow=1, k_fast=1000, clock stretch=4)\n\n");

  auto design = dsp::make_moving_average();
  const std::vector<double> x = {1.0, 1.0, 2.0, 0.0, 0.5, 1.5,
                                 1.5, 0.0, 0.0, 1.0, 1.0, 1.0};
  analysis::ClockedRunOptions options;
  options.ode.t_end =
      analysis::suggest_t_end({}, design.network->rate_policy(), x.size());
  const auto result = analysis::run_clocked_circuit(
      *design.network, design.circuit, "x", x, "y", options);
  const auto expected = dsp::reference_moving_average(x);

  std::printf("measured clock period: %.2f time units\n\n",
              result.clock_period);
  std::printf("%-5s %-10s %-12s %-12s %-10s\n", "n", "x[n]", "y[n] (mol)",
              "y[n] (ref)", "error");
  for (std::size_t n = 0; n < x.size(); ++n) {
    std::printf("%-5zu %-10.3f %-12.4f %-12.4f %-10.2e\n", n, x[n],
                result.outputs[n], expected[n],
                result.outputs[n] - expected[n]);
  }
  std::printf("\nmax |error| = %.3e   RMSE = %.3e\n",
              analysis::max_abs_error(result.outputs, expected),
              analysis::rmse(result.outputs, expected));

  // Figure: sampled output vs reference over the cycle index.
  analysis::Series molecular;
  molecular.label = "molecular";
  molecular.glyph = '*';
  analysis::Series reference;
  reference.label = "reference";
  reference.glyph = 'o';
  for (std::size_t n = 0; n < x.size(); ++n) {
    molecular.x.push_back(static_cast<double>(n));
    molecular.y.push_back(result.outputs[n]);
    reference.x.push_back(static_cast<double>(n));
    reference.y.push_back(expected[n]);
  }
  const std::vector<analysis::Series> series = {molecular, reference};
  analysis::AsciiPlotOptions plot;
  plot.width = 90;
  plot.height = 12;
  std::printf("\n%s\n", analysis::ascii_plot(series, plot).c_str());

  std::printf("== F3b: accuracy vs clock stretch (timing closure)\n\n");
  std::printf("%-10s %-12s %-12s\n", "stretch", "max error", "period");
  for (const double stretch : {2.0, 3.0, 4.0, 6.0, 8.0}) {
    sync::ClockSpec clock;
    clock.phase_stretch = stretch;
    auto swept = dsp::make_moving_average(clock);
    const std::vector<double> xs = {1.0, 0.0, 1.0, 0.5, 1.5, 0.0};
    analysis::ClockedRunOptions swept_options;
    swept_options.ode.t_end = analysis::suggest_t_end(
        clock, swept.network->rate_policy(), xs.size());
    const auto swept_result = analysis::run_clocked_circuit(
        *swept.network, swept.circuit, "x", xs, "y", swept_options);
    std::printf("%-10.1f %-12.3e %-12.2f\n", stretch,
                analysis::max_abs_error(swept_result.outputs,
                                        dsp::reference_moving_average(xs)),
                swept_result.clock_period);
  }
  std::printf(
      "(Slower clock -> more settle time per phase -> smaller per-cycle\n"
      " transfer residual: the molecular analogue of fixing a setup-time\n"
      " violation by lowering the clock frequency.)\n");
  return 0;
}
