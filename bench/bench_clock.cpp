// Experiment F1 + T5: the molecular clock.
//
// F1 — regenerates the paper's clock figure: sustained three-phase
//      oscillation of the chemical concentrations, where a high
//      concentration is a logical 1 and a low concentration a logical 0.
// T5 — timing-closure table: measured period, phase durations, amplitude,
//      and mutual-exclusion margin as functions of the phase stretch and the
//      slow rate constant.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/metrics.hpp"
#include "analysis/plot.hpp"
#include "core/network.hpp"
#include "sim/observer.hpp"
#include "sim/ode.hpp"
#include "sync/clock.hpp"

namespace {

using namespace mrsc;

struct ClockMeasurement {
  double period = 0.0;
  double period_stddev = 0.0;
  double amplitude = 0.0;
  double worst_overlap = 0.0;  // max of the 2nd-largest phase at any time
  std::size_t cycles = 0;
};

ClockMeasurement measure(const sync::ClockSpec& spec,
                         const core::RatePolicy& policy, double t_end) {
  core::ReactionNetwork net;
  net.set_rate_policy(policy);
  const sync::ClockHandles clock = sync::build_clock(net, spec);
  sim::EdgeDetector edges(clock.phase_g, 0.2 * spec.token, 0.6 * spec.token);
  sim::Observer* observers[] = {&edges};
  sim::OdeOptions options;
  options.t_end = t_end;
  options.record_interval = 0.05 / policy.k_slow;
  const sim::OdeResult run = sim::simulate_ode(
      net, options, net.initial_state(),
      std::span<sim::Observer* const>(observers, 1));

  ClockMeasurement m;
  const auto& rising = edges.rising_edges();
  m.cycles = rising.size();
  if (rising.size() >= 3) {
    std::vector<double> periods;
    for (std::size_t i = 2; i < rising.size(); ++i) {
      periods.push_back(rising[i] - rising[i - 1]);  // skip startup
    }
    m.period = analysis::mean(periods);
    m.period_stddev = periods.size() >= 2 ? analysis::stddev(periods) : 0.0;
  }
  const double settle = t_end * 0.3;
  m.amplitude =
      run.trajectory.max_in_window(clock.phase_g, settle, t_end);
  for (std::size_t k = 0; k < run.trajectory.sample_count(); ++k) {
    if (run.trajectory.time(k) < settle) continue;
    double values[3] = {run.trajectory.value(k, clock.phase_r),
                        run.trajectory.value(k, clock.phase_g),
                        run.trajectory.value(k, clock.phase_b)};
    std::sort(std::begin(values), std::end(values));
    m.worst_overlap = std::max(m.worst_overlap, values[1]);
  }
  return m;
}

void figure_waveform() {
  std::printf("== F1: molecular clock — sustained three-phase oscillation\n");
  std::printf("   (k_slow=1, k_fast=1000, token=1, stretch=4)\n\n");
  core::ReactionNetwork net;
  const sync::ClockSpec spec;
  const sync::ClockHandles clock = sync::build_clock(net, spec);
  sim::OdeOptions options;
  options.t_end = 150.0;
  options.record_interval = 0.4;
  const sim::OdeResult run = sim::simulate_ode(net, options);
  const std::vector<core::SpeciesId> ids = {clock.phase_r, clock.phase_g,
                                            clock.phase_b};
  analysis::AsciiPlotOptions plot;
  plot.width = 110;
  plot.height = 14;
  plot.y_min = 0.0;
  plot.y_max = 1.05;
  std::printf("%s\n", analysis::plot_trajectory(run.trajectory, net, ids,
                                                plot)
                          .c_str());
}

}  // namespace

int main() {
  figure_waveform();

  std::printf(
      "== T5a: period vs phase stretch (k_slow=1, k_fast=1000, token=1)\n\n");
  std::printf("%-10s %-10s %-12s %-11s %-10s %s\n", "stretch", "period",
              "period sd", "amplitude", "overlap", "cycles");
  for (const double stretch : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    sync::ClockSpec spec;
    spec.phase_stretch = stretch;
    const ClockMeasurement m =
        measure(spec, core::RatePolicy{}, 180.0 * stretch);
    std::printf("%-10.1f %-10.2f %-12.3f %-11.3f %-10.3f %zu\n", stretch,
                m.period, m.period_stddev, m.amplitude, m.worst_overlap,
                m.cycles);
  }

  std::printf(
      "\n== T5b: period vs k_slow (stretch=4, ratio k_fast/k_slow=1000)\n\n");
  std::printf("%-10s %-12s %-10s\n", "k_slow", "period", "period*k_slow");
  for (const double k_slow : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    core::RatePolicy policy;
    policy.k_slow = k_slow;
    policy.k_fast = 1000.0 * k_slow;
    const ClockMeasurement m = measure({}, policy, 700.0 / k_slow);
    std::printf("%-10.2f %-12.2f %-10.2f\n", k_slow, m.period,
                m.period * k_slow);
  }
  std::printf(
      "\n(The period scales as 1/k_slow: the clock frequency is set by the\n"
      " slow rate category alone, as the rate-independence claim requires.)\n");

  std::printf("\n== T5c: ablation — clock without positive feedback\n\n");
  sync::ClockSpec no_feedback;
  no_feedback.feedback = false;
  const ClockMeasurement m = measure(no_feedback, core::RatePolicy{}, 600.0);
  std::printf("cycles detected in 600 time units: %zu (with feedback: ~20)\n",
              m.cycles);
  std::printf(
      "-> without reactions (2)-(3) the oscillation collapses into a mixed\n"
      "   fixed point; the feedback dimers are what make the clock a\n"
      "   relaxation oscillator.\n");
  return 0;
}
