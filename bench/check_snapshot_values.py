#!/usr/bin/env python3
"""Compare the numeric values of a regenerated bench JSON against a
committed snapshot (bench/snapshots/).

check_snapshot_schema.py guards the report *shape*; this guards the
*numbers*. Every numeric leaf shared by both reports must agree within a
relative tolerance (default 35% — wide enough for machine-to-machine timing
noise, tight enough to flag a 2x regression). Values near zero fall back to
an absolute epsilon so 0-vs-0.0001 noise does not divide by zero.

This is an *advisory* gate: CI runs it with continue-on-error so a noisy
runner cannot block a merge, but a real regression shows up red in the log.
Known-volatile paths (seeds, uptimes, per-run identifiers) are excluded
with --ignore PREFIX.

usage: check_snapshot_values.py SNAPSHOT.json FRESH.json
           [--tolerance FRAC] [--abs-epsilon X] [--ignore PREFIX]...
exit:  0 all shared numeric leaves within tolerance
       1 at least one drifted (or a numeric leaf disappeared)
       2 usage/IO error
"""
import json
import re
import sys


def numeric_leaves(node, prefix=""):
    """Flatten to {path: value} for every numeric leaf. List elements are
    indexed so values align positionally between snapshot and fresh run."""
    leaves = {}
    if isinstance(node, bool):
        return leaves  # bools are ints in Python; schema check owns them
    if isinstance(node, (int, float)):
        leaves[prefix] = float(node)
    elif isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else key
            leaves.update(numeric_leaves(value, path))
    elif isinstance(node, list):
        for index, item in enumerate(node):
            leaves.update(numeric_leaves(item, f"{prefix}[{index}]"))
    return leaves


def main(argv):
    paths = []
    ignore = []
    tolerance = 0.35
    abs_epsilon = 1e-9
    i = 1
    while i < len(argv):
        if argv[i] == "--ignore":
            if i + 1 >= len(argv):
                sys.stderr.write(__doc__)
                return 2
            ignore.append(argv[i + 1])
            i += 2
        elif argv[i] == "--tolerance":
            if i + 1 >= len(argv):
                sys.stderr.write(__doc__)
                return 2
            tolerance = float(argv[i + 1])
            i += 2
        elif argv[i] == "--abs-epsilon":
            if i + 1 >= len(argv):
                sys.stderr.write(__doc__)
                return 2
            abs_epsilon = float(argv[i + 1])
            i += 2
        else:
            paths.append(argv[i])
            i += 1
    if len(paths) != 2:
        sys.stderr.write(__doc__)
        return 2

    def kept(path):
        # Ignore prefixes are written index-free ("sweeps[].trials[].seed"),
        # matching the schema checker's notation; collapse indices first.
        plain = re.sub(r"\[\d+\]", "[]", path)
        return not any(plain == p or plain.startswith(p + ".") or
                       plain.startswith(p + "[") for p in ignore)

    try:
        with open(paths[0]) as f:
            snapshot = numeric_leaves(json.load(f))
        with open(paths[1]) as f:
            fresh = numeric_leaves(json.load(f))
    except (OSError, ValueError) as error:
        sys.stderr.write(f"check_snapshot_values: {error}\n")
        return 2

    drifted = []
    missing = []
    for path, expected in sorted(snapshot.items()):
        if not kept(path):
            continue
        if path not in fresh:
            missing.append(path)
            continue
        actual = fresh[path]
        scale = max(abs(expected), abs_epsilon)
        if abs(actual - expected) / scale > tolerance:
            drifted.append((path, expected, actual))

    for path, expected, actual in drifted:
        rel = abs(actual - expected) / max(abs(expected), abs_epsilon)
        print(f"DRIFT  {path}: snapshot {expected:g} -> fresh {actual:g} "
              f"({rel * 100:.0f}% > {tolerance * 100:.0f}%)")
    for path in missing:
        print(f"MISSING  {path}: numeric in snapshot, absent in fresh run")

    compared = sum(1 for p in snapshot if kept(p) and p in fresh)
    if drifted or missing:
        print(f"check_snapshot_values: {len(drifted)} drifted, "
              f"{len(missing)} missing of {compared} compared "
              f"({paths[0]} vs {paths[1]})")
        return 1
    print(f"check_snapshot_values: {compared} numeric leaves within "
          f"{tolerance * 100:.0f}% ({paths[0]} vs {paths[1]})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
