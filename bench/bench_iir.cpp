// Experiment F5: second-order recursive (IIR) filter
// y[n] = x[n] + y[n-1]/2 + y[n-2]/4 — the "biquad" of this reproduction.
// Recursive designs are the hard case for clocked molecular computation:
// per-cycle transfer residuals feed back into the state, so errors could in
// principle compound. The impulse and step responses below show they stay
// bounded.
#include <cstdio>
#include <variant>
#include <vector>

#include "analysis/harness.hpp"
#include "analysis/metrics.hpp"
#include "analysis/plot.hpp"
#include "dsp/filters.hpp"
#include "scenario/registry.hpp"

namespace {
using namespace mrsc;

void run_case(const char* title, const std::vector<double>& x) {
  scenario::ResolvedScenario resolved =
      scenario::ScenarioRegistry::global().resolve("iir");
  core::ReactionNetwork& net = *resolved.design.network;
  const sync::CompiledCircuit& circuit =
      std::get<scenario::CircuitArtifacts>(resolved.artifacts).circuit;
  analysis::ClockedRunOptions options;
  options.ode.t_end =
      analysis::suggest_t_end({}, net.rate_policy(), x.size());
  const auto result =
      analysis::run_clocked_circuit(net, circuit, "x", x, "y", options);
  const auto expected = dsp::reference_second_order_iir(x);

  std::printf("-- %s\n", title);
  std::printf("%-5s %-8s %-12s %-12s %-10s\n", "n", "x[n]", "y[n] (mol)",
              "y[n] (ref)", "error");
  for (std::size_t n = 0; n < x.size(); ++n) {
    std::printf("%-5zu %-8.3f %-12.4f %-12.4f %-10.2e\n", n, x[n],
                result.outputs[n], expected[n],
                result.outputs[n] - expected[n]);
  }
  std::printf("max |error| = %.3e   RMSE = %.3e\n\n",
              analysis::max_abs_error(result.outputs, expected),
              analysis::rmse(result.outputs, expected));

  analysis::Series molecular;
  molecular.label = "molecular";
  molecular.glyph = '*';
  analysis::Series reference;
  reference.label = "reference";
  reference.glyph = 'o';
  for (std::size_t n = 0; n < x.size(); ++n) {
    molecular.x.push_back(static_cast<double>(n));
    molecular.y.push_back(result.outputs[n]);
    reference.x.push_back(static_cast<double>(n));
    reference.y.push_back(expected[n]);
  }
  const std::vector<analysis::Series> series = {molecular, reference};
  analysis::AsciiPlotOptions plot;
  plot.width = 90;
  plot.height = 12;
  std::printf("%s\n", analysis::ascii_plot(series, plot).c_str());
}

}  // namespace

int main() {
  std::printf("== F5: second-order IIR filter y[n] = x[n] + y[n-1]/2 + "
              "y[n-2]/4\n");
  std::printf("   (poles at 0.809 and -0.309; k_slow=1, k_fast=1000)\n\n");

  run_case("impulse response (x = delta)",
           {1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0});
  run_case("step response (x = 1 from n=0; steady state = 4)",
           {1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0,
            1.0});
  return 0;
}
