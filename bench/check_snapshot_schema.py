#!/usr/bin/env python3
"""Compare the key schema of a regenerated bench JSON against a committed
snapshot (bench/snapshots/).

Timings, throughputs, and margins drift run to run and machine to machine;
the *shape* of the report may not — a renamed or dropped key silently breaks
every dashboard and CI grep keyed on it. This check regenerates the report
and requires the same set of key paths (list elements are collapsed to "[]",
so growing a list is fine, changing its element schema is not).

Keys that only appear for particular outcomes (a trial's recovery log, a
failure detail) can be declared with --optional PREFIX; paths under an
optional prefix are excluded from the comparison on both sides.

usage: check_snapshot_schema.py SNAPSHOT.json FRESH.json [--optional PREFIX]...
exit:  0 schemas match, 1 schema drift, 2 usage/IO error
"""
import json
import sys


def schema(node, prefix=""):
    keys = set()
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else key
            keys.add(path)
            keys |= schema(value, path)
    elif isinstance(node, list):
        for item in node:
            keys |= schema(item, prefix + "[]")
    return keys


def main(argv):
    paths = []
    optional = []
    i = 1
    while i < len(argv):
        if argv[i] == "--optional":
            if i + 1 >= len(argv):
                sys.stderr.write(__doc__)
                return 2
            optional.append(argv[i + 1])
            i += 2
        else:
            paths.append(argv[i])
            i += 1
    if len(paths) != 2:
        sys.stderr.write(__doc__)
        return 2
    argv = [argv[0]] + paths

    def keep(key):
        return not any(key == p or key.startswith(p + ".") or
                       key.startswith(p + "[]") for p in optional)

    try:
        with open(argv[1]) as f:
            snapshot = {k for k in schema(json.load(f)) if keep(k)}
        with open(argv[2]) as f:
            fresh = {k for k in schema(json.load(f)) if keep(k)}
    except (OSError, json.JSONDecodeError) as error:
        sys.stderr.write(f"check_snapshot_schema: {error}\n")
        return 2
    missing = sorted(snapshot - fresh)
    added = sorted(fresh - snapshot)
    for key in missing:
        print(f"key in snapshot but not in fresh run: {key}")
    for key in added:
        print(f"key in fresh run but not in snapshot: {key}")
    if missing or added:
        print(f"schema drift against {argv[1]} "
              f"({len(missing)} missing, {len(added)} added)")
        return 1
    print(f"{argv[1]}: schema matches ({len(snapshot)} key paths)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
