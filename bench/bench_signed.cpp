// Experiment F7 (extension): signed computation via dual-rail signals.
//
// Concentrations cannot be negative; a signed value rides on a rail pair
// (p, n) with v = p - n, normalized by annihilation while parked in
// registers and output ports. The first-difference filter
// y[n] = x[n] - x[n-1] — a *negative* filter coefficient — demonstrates it:
// the molecular output goes genuinely negative (its n-rail dominates) and
// tracks the reference.
#include <cstdio>
#include <vector>

#include "analysis/harness.hpp"
#include "analysis/metrics.hpp"
#include "analysis/plot.hpp"
#include "dsp/filters.hpp"

namespace {
using namespace mrsc;
}  // namespace

int main() {
  std::printf("== F7: first-difference filter y[n] = x[n] - x[n-1] "
              "(dual-rail)\n\n");

  auto design = dsp::make_first_difference();
  std::printf("compiled: %zu species, %zu reactions\n\n",
              design.network->species_count(),
              design.network->reaction_count());

  const std::vector<double> x = {1.0, 0.25, 1.5, 1.5, 0.0,
                                 2.0, 0.5,  0.5, 1.0, 0.0};
  std::vector<analysis::PortSamples> inputs(2);
  inputs[0] = {"x_p", x};
  inputs[1] = {"x_n", std::vector<double>(x.size(), 0.0)};
  const std::vector<std::string> out_ports = {"y_p", "y_n"};
  analysis::ClockedRunOptions options;
  options.ode.t_end =
      analysis::suggest_t_end({}, design.network->rate_policy(), x.size());
  const auto result = analysis::run_clocked_circuit_multi(
      *design.network, design.circuit, inputs, out_ports, options);
  const auto y = analysis::signed_series(result, "y");
  const auto expected = dsp::reference_first_difference(x);

  std::printf("%-4s %-8s %-10s %-10s %-12s %-12s %-10s\n", "n", "x[n]",
              "y_p rail", "y_n rail", "y[n] (mol)", "y[n] (ref)", "error");
  for (std::size_t n = 0; n < x.size(); ++n) {
    std::printf("%-4zu %-8.2f %-10.4f %-10.4f %-12.4f %-12.4f %-10.2e\n", n,
                x[n], result.outputs.at("y_p")[n],
                result.outputs.at("y_n")[n], y[n], expected[n],
                y[n] - expected[n]);
  }
  std::printf("\nmax |error| = %.3e\n",
              analysis::max_abs_error(y, expected));
  std::printf(
      "(Negative outputs appear as the n-rail dominating after in-place\n"
      " normalization; arithmetic on rails is railwise, negation is a free\n"
      " rail swap.)\n\n");

  std::printf("== F7b: signed vs unsigned compilation cost\n\n");
  auto unsigned_design = dsp::make_moving_average();
  std::printf("%-22s %-10s %-12s\n", "design", "species", "reactions");
  std::printf("%-22s %-10zu %-12zu\n", "moving avg (unsigned)",
              unsigned_design.network->species_count(),
              unsigned_design.network->reaction_count());
  std::printf("%-22s %-10zu %-12zu\n", "first diff (signed)",
              design.network->species_count(),
              design.network->reaction_count());
  std::printf("\n(Dual-rail roughly doubles the datapath: every signal is a\n"
              " pair and every op is emitted railwise.)\n");
  return 0;
}
