// Experiment F4: the three-bit binary counter.
//
// Sequential logic (not just linear signal flow) on the synchronous
// machinery: dual-rail bits, a ripple-carry increment token injected once
// per clock cycle, and cycle-by-cycle comparison against the gate-level
// golden-model netlist.
#include <cstdio>
#include <variant>
#include <vector>

#include "analysis/harness.hpp"
#include "analysis/plot.hpp"
#include "dsp/counter.hpp"
#include "logic/netlist.hpp"
#include "scenario/registry.hpp"

namespace {
using namespace mrsc;

std::vector<std::uint64_t> golden(std::size_t bits, std::uint64_t initial,
                                  std::size_t increments) {
  const logic::Netlist netlist = logic::make_counter_netlist(bits, initial);
  logic::Simulation sim(netlist);
  const logic::NetId enable = *netlist.find("enable");
  std::vector<std::uint64_t> values;
  for (std::size_t i = 0; i < increments; ++i) {
    sim.set_input(enable, true);
    sim.evaluate();
    sim.clock_edge();
    sim.evaluate();
    values.push_back(sim.output_word());
  }
  return values;
}

}  // namespace

int main() {
  std::printf("== F4: 3-bit dual-rail binary counter, 20 increments\n");
  std::printf("   (k_slow=1, k_fast=1000, clock stretch=4)\n\n");

  scenario::ResolvedScenario resolved =
      scenario::ScenarioRegistry::global().resolve("counter(3)");
  core::ReactionNetwork& net = *resolved.design.network;
  const auto& artifacts =
      std::get<scenario::CounterArtifacts>(resolved.artifacts);
  const dsp::CounterSpec& spec = artifacts.spec;
  const dsp::CounterHandles& handles = artifacts.handles;
  constexpr std::size_t kIncrements = 20;
  analysis::ClockedRunOptions options;
  options.ode.t_end =
      analysis::suggest_t_end(spec.clock, net.rate_policy(), kIncrements);
  const auto result = analysis::run_counter(net, handles, kIncrements,
                                            options);
  const auto reference = golden(spec.bits, spec.initial_value, kIncrements);

  std::printf("%-7s %-12s %-12s %-8s\n", "cycle", "molecular", "gate-level",
              "match");
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < kIncrements; ++i) {
    const bool ok = result.values[i] == reference[i];
    if (!ok) ++mismatches;
    std::printf("%-7zu %-12llu %-12llu %s\n", i,
                static_cast<unsigned long long>(result.values[i]),
                static_cast<unsigned long long>(reference[i]),
                ok ? "yes" : "NO");
  }
  std::printf("\nmismatches: %zu / %zu cycles\n", mismatches, kIncrements);

  // Figure: the analog one-rail of bit 0 and bit 2 over time (bit 0 toggles
  // every cycle, bit 2 every four).
  std::printf("\nanalog rails (O = concentration of the 'one' rail):\n\n");
  const std::vector<core::SpeciesId> ids = {handles.one_rail[0],
                                            handles.one_rail[2]};
  analysis::AsciiPlotOptions plot;
  plot.width = 110;
  plot.height = 10;
  plot.y_min = 0.0;
  plot.y_max = 1.1;
  std::printf("%s\n", analysis::plot_trajectory(result.ode.trajectory, net,
                                                ids, plot)
                          .c_str());

  std::printf("== F4b: width scaling (increments = 2^bits + 4, wraps)\n\n");
  std::printf("%-7s %-12s %-12s\n", "bits", "mismatches", "species");
  for (const std::size_t bits : {1u, 2u, 3u, 4u}) {
    scenario::ResolvedScenario wide =
        scenario::ScenarioRegistry::global().resolve(
            "counter(" + std::to_string(bits) + ")");
    core::ReactionNetwork& wide_net = *wide.design.network;
    const auto& wide_artifacts =
        std::get<scenario::CounterArtifacts>(wide.artifacts);
    const dsp::CounterSpec& wide_spec = wide_artifacts.spec;
    const dsp::CounterHandles& wide_handles = wide_artifacts.handles;
    const std::size_t increments = (std::size_t{1} << bits) + 4;
    analysis::ClockedRunOptions wide_options;
    wide_options.ode.t_end = analysis::suggest_t_end(
        wide_spec.clock, wide_net.rate_policy(), increments);
    const auto wide_result =
        analysis::run_counter(wide_net, wide_handles, increments,
                              wide_options);
    const auto wide_reference = golden(bits, 0, increments);
    std::size_t bad = 0;
    for (std::size_t i = 0; i < increments; ++i) {
      if (wide_result.values[i] != wide_reference[i]) ++bad;
    }
    std::printf("%-7zu %-12zu %-12zu\n", bits, bad,
                wide_net.species_count());
  }
  return 0;
}
