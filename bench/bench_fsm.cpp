// Experiment F6 (extension): general finite state machines.
//
// The paper's closing claim — delay elements plus computational constructs
// give "general circuit functions" — made concrete: arbitrary Mealy machines
// compiled to clocked reaction networks, executed cycle-accurately, and
// verified symbol-for-symbol against an exact software reference. Also
// reports the compilation size table (species/reactions vs |states| x
// |alphabet|).
#include <cstdio>
#include <variant>
#include <vector>

#include "analysis/harness.hpp"
#include "fsm/fsm.hpp"
#include "scenario/registry.hpp"
#include "util/rng.hpp"

namespace {
using namespace mrsc;
}  // namespace

int main() {
  std::printf("== F6: '101' sequence detector on a 16-bit stream\n\n");
  {
    scenario::ResolvedScenario resolved =
        scenario::ScenarioRegistry::global().resolve("seqdet");
    core::ReactionNetwork& net = *resolved.design.network;
    const auto& artifacts =
        std::get<scenario::FsmArtifacts>(resolved.artifacts);
    const fsm::FsmSpec& spec = artifacts.spec;
    const fsm::FsmHandles& machine = artifacts.handles;
    const std::vector<std::size_t> bits = {1, 0, 1, 0, 1, 1, 0, 1,
                                           1, 0, 1, 0, 0, 1, 0, 1};
    analysis::ClockedRunOptions options;
    options.ode.t_end =
        analysis::suggest_t_end(spec.clock, net.rate_policy(), bits.size());
    const auto run = analysis::run_fsm(net, machine, bits, options);
    const fsm::FsmTrace reference = fsm::evaluate_reference(spec, bits);

    std::printf("bits:      ");
    for (const std::size_t b : bits) std::printf("%zu ", b);
    std::printf("\nmol state: ");
    for (const std::size_t s : run.states) std::printf("%zu ", s);
    std::printf("\nref state: ");
    for (const std::size_t s : reference.states) std::printf("%zu ", s);
    std::printf("\nmatch at:  ");
    std::size_t state_errors = 0;
    std::size_t output_errors = 0;
    for (std::size_t i = 0; i < bits.size(); ++i) {
      std::printf("%s ", run.outputs[i] != fsm::kNoOutput ? "^" : ".");
      if (run.states[i] != reference.states[i]) ++state_errors;
      if (run.outputs[i] != reference.outputs[i]) ++output_errors;
    }
    std::printf("\n\nstate errors: %zu/16, output errors: %zu/16\n\n",
                state_errors, output_errors);
  }

  std::printf("== F6b: random-machine conformance (8 machines x 10 steps)\n\n");
  {
    util::Rng rng(99);
    std::size_t total_steps = 0;
    std::size_t total_errors = 0;
    for (int machine_index = 0; machine_index < 8; ++machine_index) {
      fsm::FsmSpec spec;
      spec.num_states = 2 + rng.uniform_below(4);
      spec.num_inputs = 2 + rng.uniform_below(2);
      spec.num_outputs = 2;
      spec.initial_state = rng.uniform_below(spec.num_states);
      spec.prefix = "rnd" + std::to_string(machine_index);
      spec.next_state.assign(spec.num_states,
                             std::vector<std::size_t>(spec.num_inputs, 0));
      spec.output.assign(
          spec.num_states,
          std::vector<std::size_t>(spec.num_inputs, fsm::kNoOutput));
      for (std::size_t s = 0; s < spec.num_states; ++s) {
        for (std::size_t a = 0; a < spec.num_inputs; ++a) {
          spec.next_state[s][a] = rng.uniform_below(spec.num_states);
          if (rng.uniform() < 0.5) {
            spec.output[s][a] = rng.uniform_below(spec.num_outputs);
          }
        }
      }
      std::vector<std::size_t> inputs(10);
      for (std::size_t& a : inputs) a = rng.uniform_below(spec.num_inputs);

      core::ReactionNetwork net;
      const fsm::FsmHandles handles = fsm::build_fsm(net, spec);
      analysis::ClockedRunOptions options;
      options.ode.t_end = analysis::suggest_t_end(
          spec.clock, net.rate_policy(), inputs.size());
      const auto run = analysis::run_fsm(net, handles, inputs, options);
      const fsm::FsmTrace reference = fsm::evaluate_reference(spec, inputs);
      std::size_t errors = 0;
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        if (run.states[i] != reference.states[i]) ++errors;
        if (run.outputs[i] != reference.outputs[i]) ++errors;
      }
      std::printf("machine %d: %zu states x %zu inputs -> errors %zu/20\n",
                  machine_index, spec.num_states, spec.num_inputs, errors);
      total_steps += 2 * inputs.size();
      total_errors += errors;
    }
    std::printf("\ntotal: %zu errors over %zu checked values\n\n",
                total_errors, total_steps);
  }

  std::printf("== F6c: compilation size vs machine size\n\n");
  std::printf("%-20s %-10s %-12s\n", "states x inputs", "species",
              "reactions");
  for (const std::size_t states : {2u, 4u, 8u, 16u}) {
    // The registry's fsm_wide(S) family: the same cyclic machine at any S,
    // shared with the CLIs and the scale sweep.
    const scenario::ResolvedScenario resolved =
        scenario::ScenarioRegistry::global().resolve(
            "fsm_wide(" + std::to_string(states) + ")");
    const core::ReactionNetwork& net = *resolved.design.network;
    std::printf("%3zu x 2              %-10zu %-12zu\n", states,
                net.species_count(), net.reaction_count());
  }
  std::printf(
      "\n(Linear in |states| x |alphabet|: one reaction per transition plus\n"
      " one write-back per state plus the fixed clock.)\n");

  std::printf("\n== F6d: minimization — fewer states, fewer molecules\n\n");
  {
    // A redundant 4-state parity machine (two behaviourally equivalent
    // copies of each state) vs its minimized form.
    fsm::FsmSpec redundant;
    redundant.num_states = 4;
    redundant.num_inputs = 2;
    redundant.num_outputs = 2;
    redundant.initial_state = 0;
    redundant.prefix = "red";
    redundant.next_state = {{2, 3}, {3, 2}, {0, 1}, {1, 0}};
    redundant.output = {{0, 1}, {1, 0}, {0, 1}, {1, 0}};
    const fsm::MinimizationResult minimized = fsm::minimize(redundant);

    core::ReactionNetwork before_net;
    fsm::build_fsm(before_net, redundant);
    core::ReactionNetwork after_net;
    fsm::FsmSpec after_spec = minimized.spec;
    after_spec.prefix = "minred";
    fsm::build_fsm(after_net, after_spec);

    std::printf("%-14s %-10s %-10s %-12s\n", "machine", "states", "species",
                "reactions");
    std::printf("%-14s %-10zu %-10zu %-12zu\n", "redundant",
                redundant.num_states, before_net.species_count(),
                before_net.reaction_count());
    std::printf("%-14s %-10zu %-10zu %-12zu\n", "minimized",
                minimized.spec.num_states, after_net.species_count(),
                after_net.reaction_count());

    // Conformance of the minimized machine against the original reference.
    util::Rng rng(7);
    std::vector<std::size_t> inputs(20);
    for (std::size_t& a : inputs) a = rng.uniform_below(2);
    const fsm::FsmTrace a_trace = fsm::evaluate_reference(redundant, inputs);
    const fsm::FsmTrace b_trace =
        fsm::evaluate_reference(minimized.spec, inputs);
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      if (a_trace.outputs[i] != b_trace.outputs[i]) ++mismatches;
    }
    std::printf("\noutput mismatches over 20 random steps: %zu\n",
                mismatches);
    std::printf("(Partition-refinement minimization halves the compiled\n"
                " footprint here while preserving behaviour exactly — state\n"
                " count is molecule count in this technology.)\n");
  }
  return 0;
}
