#!/usr/bin/env bash
# Full verification run: build, test, exercise every CLI, and regenerate
# every experiment. Produces test_output.txt and bench_output.txt at the
# repository root. Exits non-zero if any stage fails.
set -u
cd "$(dirname "$0")/.."

FAILURES=0
note_failure() {
  FAILURES=$((FAILURES + 1))
  echo "FAILED: $1" | tee -a test_output.txt
}

# Respect an already-configured build dir (its generator is sticky);
# default fresh configures to Ninja.
if [ -f build/CMakeCache.txt ]; then
  cmake -B build || exit 1
else
  cmake -B build -G Ninja || exit 1
fi
cmake --build build || exit 1

ctest --test-dir build 2>&1 | tee test_output.txt
[ "${PIPESTATUS[0]}" -eq 0 ] || note_failure "ctest"

# Every CLI end to end, the same way CI drives them.
echo "########## CLI smoke ##########" | tee -a test_output.txt
./build/src/tools/mrsc_compile --design moving_average --json compile_ma.json \
  >> test_output.txt 2>&1 || note_failure "mrsc_compile"
./build/src/tools/mrsc_lint --design all --werror \
  >> test_output.txt 2>&1 || note_failure "mrsc_lint"
./build/src/tools/mrsc_verify --seeds 50 --threads 2 \
  >> test_output.txt 2>&1 || note_failure "mrsc_verify"
./build/src/tools/mrsc_stress --design counter --fault rate-jitter \
  --intensities 0.05,0.1 --trials 2 --threads 2 \
  >> test_output.txt 2>&1 || note_failure "mrsc_stress"
./build/src/tools/mrsc_sim examples/data/oscillator.crn --t-end 30 \
  --method nrm --omega 200 --species clk_G \
  >> test_output.txt 2>&1 || note_failure "mrsc_sim"
./build/src/tools/mrsc_batch examples/data/oscillator.crn --t-end 5 \
  --replicates 8 --jobs 2 --omega 100 --species clk_G \
  >> test_output.txt 2>&1 || note_failure "mrsc_batch"

# The --scenario path: every CLI resolves designs through the registry —
# generator specs, fixed names, and file-based scenarios found by bare name
# under ./scenarios/.
echo "########## scenario smoke ##########" | tee -a test_output.txt
catalog=$(./build/src/tools/mrsc_compile --list-scenarios \
  | sed -n 's/^smoke catalog: //p')
[ -n "$catalog" ] || note_failure "mrsc_compile --list-scenarios"
for spec in $catalog; do
  ./build/src/tools/mrsc_compile --scenario "$spec" \
    >> test_output.txt 2>&1 || note_failure "mrsc_compile --scenario $spec"
  ./build/src/tools/mrsc_lint --scenario "$spec" --quiet \
    >> test_output.txt 2>&1 || note_failure "mrsc_lint --scenario $spec"
  ./build/src/tools/mrsc_sim --scenario "$spec" --t-end 2 \
    >> test_output.txt 2>&1 || note_failure "mrsc_sim --scenario $spec"
done
./build/src/tools/mrsc_verify --scenario "counter(2)" --seeds 1 \
  >> test_output.txt 2>&1 || note_failure "mrsc_verify --scenario"
./build/src/tools/mrsc_batch --scenario "counter(2)" --t-end 2 \
  --replicates 4 --omega 100 \
  >> test_output.txt 2>&1 || note_failure "mrsc_batch --scenario"
./build/src/tools/mrsc_stress --scenario nightly_counter --trials 1 \
  --intensities 0.05 --threads 2 \
  >> test_output.txt 2>&1 || note_failure "mrsc_stress --scenario"
./build/src/tools/mrsc_sim --scenario nightly_counter --t-end 2 \
  >> test_output.txt 2>&1 || note_failure "mrsc_sim --scenario (file)"

# The service round trip: server on an ephemeral port, open-loop load-gen,
# SIGTERM shutdown, cache-hit assertion (tests/serve_roundtrip.sh).
echo "########## serve round trip ##########" | tee -a test_output.txt
bash tests/serve_roundtrip.sh \
  ./build/src/tools/mrsc_serve ./build/src/tools/mrsc_loadgen \
  >> test_output.txt 2>&1 || note_failure "serve round trip"

# The distributor under fire: 3 shards, 2 behind seeded fault-injecting
# proxies, a mid-run SIGTERM + restart, a drain — every merged report
# byte-compared against the single-shard golden run (tests/fleet_chaos.sh).
echo "########## fleet chaos round trip ##########" | tee -a test_output.txt
bash tests/fleet_chaos.sh \
  ./build/src/tools/mrsc_serve ./build/src/tools/mrsc_fleet \
  ./build/src/tools/mrsc_chaosproxy \
  >> test_output.txt 2>&1 || note_failure "fleet chaos round trip"

: > bench_output.txt
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "########## $(basename "$b") ##########" | tee -a bench_output.txt
    "$b" 2>&1 | tee -a bench_output.txt
    [ "${PIPESTATUS[0]}" -eq 0 ] || note_failure "$(basename "$b")"
    echo | tee -a bench_output.txt
  fi
done

if [ "$FAILURES" -ne 0 ]; then
  echo "run_all: $FAILURES stage(s) failed"
  exit 1
fi
echo "run_all: all stages passed"
