#include "async/circuit.hpp"

#include <gtest/gtest.h>

#include "analysis/harness.hpp"
#include "analysis/metrics.hpp"
#include "dsp/filters.hpp"
#include "sim/ode.hpp"

namespace mrsc::async {
namespace {

using core::ReactionNetwork;
using sync::Reg;
using sync::Sig;

analysis::ClockedRunOptions options_for(std::size_t cycles) {
  analysis::ClockedRunOptions options;
  // A handshake cycle is ~20-40 slow time constants; budget generously (the
  // run stops early once all outputs arrive).
  options.ode.t_end = 150.0 * static_cast<double>(cycles + 3);
  return options;
}

TEST(AsyncCircuit, MinOpRejected) {
  AsyncCircuitBuilder builder;
  const Sig a = builder.input("a");
  const Sig b = builder.input("b");
  builder.output("y", builder.min(a, b));
  ReactionNetwork net;
  EXPECT_THROW((void)builder.compile_async(net), std::logic_error);
}

TEST(AsyncCircuit, StaticChecksStillApply) {
  AsyncCircuitBuilder builder;
  (void)builder.input("x");
  ReactionNetwork net;
  EXPECT_THROW((void)builder.compile_async(net), std::logic_error);
}

TEST(AsyncCircuit, HandlesAreNamed) {
  AsyncCircuitBuilder builder;
  const Sig x = builder.input("x");
  const Reg reg = builder.add_register("d", 0.25);
  builder.output("y", builder.read(reg));
  builder.write(reg, x);
  ReactionNetwork net;
  const CompiledAsyncCircuit compiled = builder.compile_async(net, "t");
  EXPECT_NO_THROW((void)compiled.input("x"));
  EXPECT_NO_THROW((void)compiled.output("y"));
  EXPECT_NO_THROW((void)compiled.red_of("d"));
  EXPECT_NO_THROW((void)compiled.red_of("hb"));  // built-in heartbeat
  EXPECT_THROW((void)compiled.input("zzz"), std::out_of_range);
  EXPECT_DOUBLE_EQ(net.initial(compiled.red_of("d")), 0.25);
}

TEST(AsyncCircuit, HeartbeatPacesWithoutData) {
  // With no inputs injected, the heartbeat keeps cycling: the pipeline is
  // live even when idle.
  AsyncCircuitBuilder builder;
  const Sig x = builder.input("x");
  const Reg reg = builder.add_register("d", 0.0);
  builder.output("y", builder.read(reg));
  builder.write(reg, x);
  ReactionNetwork net;
  const CompiledAsyncCircuit compiled = builder.compile_async(net, "t");

  sim::EdgeDetector pacing(compiled.pacing, 0.2, 0.6);
  sim::Observer* observers[] = {&pacing};
  sim::OdeOptions options;
  options.t_end = 400.0;
  (void)sim::simulate_ode(net, options, net.initial_state(),
                          std::span<sim::Observer* const>(observers, 1));
  EXPECT_GE(pacing.rising_edges().size(), 3u);
}

TEST(AsyncCircuit, DelayLineDelaysByOneCycle) {
  AsyncCircuitBuilder builder;
  const Sig x = builder.input("x");
  const Reg reg = builder.add_register("d", 0.0);
  builder.output("y", builder.read(reg));
  builder.write(reg, x);
  auto net = std::make_unique<ReactionNetwork>();
  const CompiledAsyncCircuit compiled = builder.compile_async(*net, "t");

  const std::vector<double> samples = {1.0, 0.5, 1.5};
  const auto result = analysis::run_async_circuit(
      *net, compiled, "x", samples, "y", options_for(samples.size()));
  const auto expected = dsp::reference_delay_line(samples, 1);
  EXPECT_LT(analysis::max_abs_error(result.outputs, expected), 0.05);
}

TEST(AsyncCircuit, MovingAverageSelfTimed) {
  // The paper's flagship filter with NO clock anywhere: completion is
  // detected by the blue-colored wires.
  AsyncCircuitBuilder builder;
  const Sig x = builder.input("x");
  const auto copies = builder.fanout(x, 2);
  const Reg reg = builder.add_register("d", 0.0);
  const Sig prev = builder.read(reg);
  builder.write(reg, copies[1]);
  builder.output("y", builder.scale(builder.add(copies[0], prev), 1, 1));
  auto net = std::make_unique<ReactionNetwork>();
  const CompiledAsyncCircuit compiled = builder.compile_async(*net, "t");

  const std::vector<double> samples = {1.0, 0.0, 1.0, 0.5};
  const auto result = analysis::run_async_circuit(
      *net, compiled, "x", samples, "y", options_for(samples.size()));
  const auto expected = dsp::reference_moving_average(samples);
  EXPECT_LT(analysis::max_abs_error(result.outputs, expected), 0.05);
}

TEST(AsyncCircuit, RateRatioRobust) {
  for (const double ratio : {200.0, 5000.0}) {
    AsyncCircuitBuilder builder;
    const Sig x = builder.input("x");
    const Reg reg = builder.add_register("d", 0.0);
    builder.output("y", builder.read(reg));
    builder.write(reg, x);
    auto net = std::make_unique<ReactionNetwork>();
    const CompiledAsyncCircuit compiled = builder.compile_async(*net, "t");
    net->set_rate_policy(core::RatePolicy{1.0, ratio});

    const std::vector<double> samples = {1.0, 0.5};
    const auto result = analysis::run_async_circuit(
        *net, compiled, "x", samples, "y", options_for(samples.size()));
    const auto expected = dsp::reference_delay_line(samples, 1);
    EXPECT_LT(analysis::max_abs_error(result.outputs, expected), 0.08)
        << "ratio " << ratio;
  }
}

}  // namespace
}  // namespace mrsc::async
