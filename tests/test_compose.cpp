#include "compile/compose.hpp"

#include "compile/passes.hpp"

#include <gtest/gtest.h>

#include "async/chain.hpp"
#include "core/builder.hpp"
#include "sim/ode.hpp"
#include "sync/clock.hpp"

namespace mrsc::compile {
namespace {
using core::NetworkBuilder;
using core::RateCategory;
using core::ReactionId;
using core::ReactionNetwork;
using core::SpeciesId;
}  // namespace

namespace {

ReactionNetwork small_network() {
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.species("A", 1.0);
  b.reaction("A -> B", RateCategory::kSlow, "decay");
  b.reaction("2 B -> C", 3.5);
  return net;
}

TEST(MergeNetwork, CopiesSpeciesWithPrefix) {
  ReactionNetwork target;
  target.add_species("X", 0.5);
  const auto map = merge_network(target, small_network(), "m1_");
  EXPECT_EQ(target.species_count(), 4u);
  EXPECT_TRUE(target.find_species("m1_A").has_value());
  EXPECT_DOUBLE_EQ(target.initial(*target.find_species("m1_A")), 1.0);
  ASSERT_EQ(map.size(), 3u);
  EXPECT_EQ(target.species_name(map[0]), "m1_A");
}

TEST(MergeNetwork, CopiesReactionsFaithfully) {
  ReactionNetwork target;
  merge_network(target, small_network(), "p_");
  ASSERT_EQ(target.reaction_count(), 2u);
  EXPECT_EQ(target.reaction(ReactionId{0}).category(), RateCategory::kSlow);
  EXPECT_EQ(target.reaction(ReactionId{0}).label(), "decay");
  EXPECT_EQ(target.reaction(ReactionId{1}).category(), RateCategory::kCustom);
  EXPECT_DOUBLE_EQ(target.reaction(ReactionId{1}).custom_rate(), 3.5);
  EXPECT_EQ(target.reaction(ReactionId{1}).reactants()[0].stoich, 2u);
}

TEST(MergeNetwork, PreservesRateMultipliers) {
  ReactionNetwork source = small_network();
  source.reaction_mutable(ReactionId{0}).set_rate_multiplier(0.25);
  ReactionNetwork target;
  merge_network(target, source, "p_");
  EXPECT_DOUBLE_EQ(target.reaction(ReactionId{0}).rate_multiplier(), 0.25);
}

TEST(MergeNetwork, NameCollisionThrows) {
  ReactionNetwork target;
  target.add_species("p_A");
  EXPECT_THROW(merge_network(target, small_network(), "p_"),
               std::invalid_argument);
}

TEST(MergeNetwork, TwoClocksCoexistAndOscillate) {
  // Build two independent clocks in separate networks, merge both into one
  // solution, and verify both oscillate.
  ReactionNetwork clock_a;
  sync::build_clock(clock_a, {});
  ReactionNetwork clock_b;
  sync::ClockSpec b_spec;
  b_spec.phase_stretch = 2.0;
  sync::build_clock(clock_b, b_spec);

  ReactionNetwork combined;
  merge_network(combined, clock_a, "a_");
  merge_network(combined, clock_b, "b_");

  sim::OdeOptions options;
  options.t_end = 200.0;
  options.record_interval = 0.2;
  const sim::OdeResult run = sim::simulate_ode(combined, options);
  const SpeciesId ga = *combined.find_species("a_clk_G");
  const SpeciesId gb = *combined.find_species("b_clk_G");
  EXPECT_GT(run.trajectory.max_in_window(ga, 100.0, 200.0), 0.8);
  EXPECT_LT(run.trajectory.min_in_window(ga, 100.0, 200.0), 0.1);
  EXPECT_GT(run.trajectory.max_in_window(gb, 100.0, 200.0), 0.8);
  EXPECT_LT(run.trajectory.min_in_window(gb, 100.0, 200.0), 0.1);
}

TEST(UntouchedSpecies, FindsIsolatedSpecies) {
  ReactionNetwork net = small_network();
  const SpeciesId lonely = net.add_species("lonely", 2.0);
  const auto untouched = untouched_species(net);
  ASSERT_EQ(untouched.size(), 1u);
  EXPECT_EQ(untouched[0], lonely);
}

TEST(UntouchedSpecies, EmptyWhenAllUsed) {
  EXPECT_TRUE(untouched_species(small_network()).empty());
}

TEST(UnreachableSpecies, InitialValueMakesReachable) {
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.species("A", 1.0);
  b.reaction("A -> B", 1.0);
  EXPECT_TRUE(unreachable_species(net).empty());
}

TEST(UnreachableSpecies, DetectsDeadBranch) {
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.species("A", 1.0);
  b.reaction("A -> B", 1.0);
  // C -> D can never fire: C starts at 0 and nothing produces it.
  b.reaction("C -> D", 1.0);
  const auto unreachable = unreachable_species(net);
  ASSERT_EQ(unreachable.size(), 2u);
  EXPECT_EQ(net.species_name(unreachable[0]), "C");
  EXPECT_EQ(net.species_name(unreachable[1]), "D");
}

TEST(UnreachableSpecies, FixedPointPropagates) {
  // A -> B, B -> C: C reachable transitively.
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.species("A", 1.0);
  b.reaction("A -> B", 1.0);
  b.reaction("B -> C", 1.0);
  EXPECT_TRUE(unreachable_species(net).empty());
}

TEST(UnreachableSpecies, ZeroOrderSourceReaches) {
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.reaction("0 -> A", 1.0);
  b.reaction("A -> B", 1.0);
  EXPECT_TRUE(unreachable_species(net).empty());
}

TEST(UnreachableSpecies, WholeDesignsAreFullyReachable) {
  // Sanity over a real construction: nothing the chain compiler emits is
  // dead.
  ReactionNetwork net;
  async::ChainSpec spec;
  spec.elements = 2;
  const async::ChainHandles handles = async::build_delay_chain(net, spec);
  net.set_initial(handles.input, 1.0);
  EXPECT_TRUE(unreachable_species(net).empty());
  EXPECT_TRUE(untouched_species(net).empty());
}

}  // namespace
}  // namespace mrsc::compile
