#include "analysis/conservation.hpp"

#include <gtest/gtest.h>

#include "async/chain.hpp"
#include "core/builder.hpp"
#include "dsp/counter.hpp"
#include "sim/ode.hpp"
#include "sync/clock.hpp"
#include "util/rng.hpp"

namespace mrsc::analysis {
namespace {

using core::NetworkBuilder;
using core::ReactionNetwork;

TEST(Conservation, SimpleDecayConservesTotal) {
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.reaction("A -> B", 1.0);
  const auto laws = conservation_laws(net);
  ASSERT_EQ(laws.size(), 1u);
  // w = (1, 1) up to scale.
  EXPECT_DOUBLE_EQ(laws[0][0], laws[0][1]);
  EXPECT_NE(laws[0][0], 0.0);
}

TEST(Conservation, SourceBreaksConservation) {
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.reaction("0 -> A", 1.0);
  EXPECT_TRUE(conservation_laws(net).empty());
}

TEST(Conservation, CatalystIsItsOwnLaw) {
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.reaction("C + A -> C + B", 1.0);
  const auto laws = conservation_laws(net);
  // Two independent laws: {C} and {A + B}.
  ASSERT_EQ(laws.size(), 2u);
}

TEST(Conservation, DimerizationWeightsByStoichiometry) {
  // A <-> dimer: conserved quantity is A + 2 D.
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.reaction("2 A -> D", 1.0);
  b.reaction("D -> 2 A", 1.0);
  const auto laws = conservation_laws(net);
  ASSERT_EQ(laws.size(), 1u);
  const double a_weight = laws[0][net.find_species("A")->index()];
  const double d_weight = laws[0][net.find_species("D")->index()];
  EXPECT_NEAR(d_weight / a_weight, 2.0, 1e-9);
}

TEST(Conservation, ClockTokenLawDiscovered) {
  // The clock's token lives in {C_R, C_G, C_B} + 2x the dimers; indicators
  // are produced from nothing, so they cannot appear in any law.
  ReactionNetwork net;
  const sync::ClockHandles clock = sync::build_clock(net, {});
  const auto laws = conservation_laws(net);
  ASSERT_EQ(laws.size(), 1u);
  const auto& law = laws[0];
  const double r = law[clock.phase_r.index()];
  ASSERT_NE(r, 0.0);
  EXPECT_NEAR(law[clock.phase_g.index()] / r, 1.0, 1e-9);
  EXPECT_NEAR(law[clock.phase_b.index()] / r, 1.0, 1e-9);
  EXPECT_NEAR(law[net.find_species("clk_I_r2g")->index()] / r, 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(law[clock.ind_r.index()], 0.0);
}

TEST(Conservation, CounterBitsEachConserved) {
  // Each dual-rail bit contributes one conservation law (Z + O + primed).
  ReactionNetwork net;
  dsp::CounterSpec spec;
  spec.bits = 3;
  dsp::build_counter(net, spec);
  const auto laws = conservation_laws(net);
  EXPECT_GE(laws.size(), 4u);  // 3 bits + the clock token
}

TEST(Conservation, LawsAreInvariantAlongTrajectories) {
  // Property: every discovered law is numerically constant along a simulated
  // trajectory of the async chain.
  ReactionNetwork net;
  async::ChainSpec spec;
  spec.elements = 2;
  const async::ChainHandles chain = async::build_delay_chain(net, spec);
  net.set_initial(chain.input, 1.0);
  const auto laws = conservation_laws(net);
  ASSERT_FALSE(laws.empty());

  sim::OdeOptions options;
  options.t_end = 40.0;
  options.record_interval = 2.0;
  const sim::OdeResult run = sim::simulate_ode(net, options);
  for (const auto& law : laws) {
    const double initial = conserved_quantity(law, run.trajectory.state(0));
    for (std::size_t k = 1; k < run.trajectory.sample_count(); ++k) {
      EXPECT_NEAR(conserved_quantity(law, run.trajectory.state(k)), initial,
                  1e-4 + 1e-3 * std::abs(initial));
    }
  }
}

// Property: on random closed networks (no sources/sinks of mass), random
// laws found are invariant under the ODE flow.
class RandomConservationTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomConservationTest, DiscoveredLawsHoldNumerically) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 11);
  ReactionNetwork net;
  const std::size_t n = 4 + rng.uniform_below(3);
  for (std::size_t i = 0; i < n; ++i) {
    net.add_species("S" + std::to_string(i), rng.uniform(0.2, 1.5));
  }
  // Mass-preserving random reactions: A + B -> C + D shapes.
  for (int j = 0; j < 6; ++j) {
    auto pick = [&] {
      return core::SpeciesId{static_cast<core::SpeciesId::underlying_type>(
          rng.uniform_below(n))};
    };
    net.add({{pick(), 1}, {pick(), 1}}, {{pick(), 1}, {pick(), 1}},
            core::RateCategory::kCustom, rng.uniform(0.2, 3.0));
  }
  const auto laws = conservation_laws(net);
  // Total mass is always conserved by this reaction shape.
  ASSERT_GE(laws.size(), 1u);

  sim::OdeOptions options;
  options.t_end = 5.0;
  options.record_interval = 0.5;
  const sim::OdeResult run = sim::simulate_ode(net, options);
  for (const auto& law : laws) {
    const double initial = conserved_quantity(law, run.trajectory.state(0));
    EXPECT_NEAR(conserved_quantity(law, run.trajectory.final_state()),
                initial, 1e-5 + 1e-4 * std::abs(initial));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomConservationTest,
                         ::testing::Range(0, 8));

TEST(Conservation, ConservedQuantitySizeMismatchThrows) {
  const std::vector<double> law = {1.0, 1.0};
  const std::vector<double> state = {1.0};
  EXPECT_THROW((void)conserved_quantity(law, state), std::invalid_argument);
}

}  // namespace
}  // namespace mrsc::analysis
