#!/usr/bin/env bash
# Chaos round trip for the distributor fleet, used by ctest and CI:
#   1. start three mrsc_serve shards on ephemeral ports,
#   2. take a golden ensemble + sweep report from a single shard,
#   3. re-run across all three shards with two of them behind
#      fault-injecting proxies (drops, delays, mid-frame truncations) and
#      demand byte-identical reports,
#   4. SIGTERM one shard mid-run, restart it on a fixed port, and demand
#      the report still matches the golden bytes,
#   5. drain one shard and demand the remaining capacity reproduces the
#      golden bytes once more.
#
# Usage: fleet_chaos.sh <mrsc_serve> <mrsc_fleet> <mrsc_chaosproxy>
set -u

SERVE_BIN=${1:?usage: fleet_chaos.sh <mrsc_serve> <mrsc_fleet> <mrsc_chaosproxy>}
FLEET_BIN=${2:?usage: fleet_chaos.sh <mrsc_serve> <mrsc_fleet> <mrsc_chaosproxy>}
PROXY_BIN=${3:?usage: fleet_chaos.sh <mrsc_serve> <mrsc_fleet> <mrsc_chaosproxy>}

WORK_DIR=$(mktemp -d)
PIDS=()
trap 'kill "${PIDS[@]}" 2>/dev/null; rm -rf "$WORK_DIR"' EXIT

fail() {
  echo "FAIL: $1"
  shift
  for log in "$@"; do
    echo "--- $log ---"
    cat "$log" 2>/dev/null
  done
  exit 1
}

wait_for_port_file() {
  local file=$1 pid=$2 what=$3
  for _ in $(seq 1 100); do
    [ -s "$file" ] && return 0
    kill -0 "$pid" 2>/dev/null || fail "$what died on startup" "$WORK_DIR"/*.log
    sleep 0.1
  done
  fail "$what never wrote its port file" "$WORK_DIR"/*.log
}

start_shard() {
  local name=$1
  shift
  "$SERVE_BIN" --port-file "$WORK_DIR/$name.port" --workers 2 \
    --shard-id "$name" "$@" >"$WORK_DIR/$name.log" 2>&1 &
  local pid=$!
  PIDS+=("$pid")
  wait_for_port_file "$WORK_DIR/$name.port" "$pid" "shard $name"
  eval "${name^^}_PID=$pid"
  eval "${name^^}_PORT=\$(cat \"$WORK_DIR/$name.port\")"
}

start_shard a
start_shard b
start_shard c

# Faulty proxies in front of shards b and c: seeded schedules, so a rerun of
# this script replays the same faults.
"$PROXY_BIN" --upstream-port "$B_PORT" --port-file "$WORK_DIR/pb.port" \
  --seed 11 --drop 0.2 --truncate 0.2 --delay 0.1 --delay-ms 10 \
  >"$WORK_DIR/pb.log" 2>&1 &
PB_PID=$!
PIDS+=("$PB_PID")
"$PROXY_BIN" --upstream-port "$C_PORT" --port-file "$WORK_DIR/pc.port" \
  --seed 12 --drop 0.2 --truncate 0.2 --delay 0.1 --delay-ms 10 \
  >"$WORK_DIR/pc.log" 2>&1 &
PC_PID=$!
PIDS+=("$PC_PID")
wait_for_port_file "$WORK_DIR/pb.port" "$PB_PID" "proxy pb"
wait_for_port_file "$WORK_DIR/pc.port" "$PC_PID" "proxy pc"
PB_PORT=$(cat "$WORK_DIR/pb.port")
PC_PORT=$(cat "$WORK_DIR/pc.port")

ENSEMBLE_ARGS=(--mode ensemble --design counter --replicates 16 --seed 7
  --t-end 2 --omega 100 --attempts 10 --backoff-base-ms 5 --backoff-cap-ms 50)
SWEEP_ARGS=(--mode sweep --design "cascade(3)" --omegas 50,100,200 --seed 3
  --t-end 2 --attempts 10 --backoff-base-ms 5 --backoff-cap-ms 50)

# --- golden single-shard reports ------------------------------------------
"$FLEET_BIN" --shards "$A_PORT" "${ENSEMBLE_ARGS[@]}" \
  --json "$WORK_DIR/golden_ensemble.json" >"$WORK_DIR/fleet1.log" 2>&1 \
  || fail "single-shard ensemble run failed" "$WORK_DIR/fleet1.log" "$WORK_DIR/a.log"
"$FLEET_BIN" --shards "$A_PORT" "${SWEEP_ARGS[@]}" \
  --json "$WORK_DIR/golden_sweep.json" >>"$WORK_DIR/fleet1.log" 2>&1 \
  || fail "single-shard sweep run failed" "$WORK_DIR/fleet1.log" "$WORK_DIR/a.log"

# --- 3 shards, 2 behind chaos proxies -------------------------------------
"$FLEET_BIN" --shards "$A_PORT,$PB_PORT,$PC_PORT" "${ENSEMBLE_ARGS[@]}" \
  --json "$WORK_DIR/chaos_ensemble.json" >"$WORK_DIR/fleet3.log" 2>&1 \
  || fail "chaos ensemble run failed" "$WORK_DIR/fleet3.log" "$WORK_DIR"/p?.log
cmp "$WORK_DIR/golden_ensemble.json" "$WORK_DIR/chaos_ensemble.json" \
  || fail "ensemble bytes diverged under chaos" \
       "$WORK_DIR/golden_ensemble.json" "$WORK_DIR/chaos_ensemble.json"

"$FLEET_BIN" --shards "$A_PORT,$PB_PORT,$PC_PORT" "${SWEEP_ARGS[@]}" \
  --json "$WORK_DIR/chaos_sweep.json" >>"$WORK_DIR/fleet3.log" 2>&1 \
  || fail "chaos sweep run failed" "$WORK_DIR/fleet3.log" "$WORK_DIR"/p?.log
cmp "$WORK_DIR/golden_sweep.json" "$WORK_DIR/chaos_sweep.json" \
  || fail "sweep bytes diverged under chaos" \
       "$WORK_DIR/golden_sweep.json" "$WORK_DIR/chaos_sweep.json"

# --- kill one shard mid-run, restart it on a fixed port --------------------
(sleep 0.3; kill -TERM "$C_PID" 2>/dev/null) &
KILLER_PID=$!
PIDS+=("$KILLER_PID")
"$FLEET_BIN" --shards "$A_PORT,$C_PORT" "${ENSEMBLE_ARGS[@]}" \
  --json "$WORK_DIR/kill_ensemble.json" >"$WORK_DIR/fleet_kill.log" 2>&1 \
  || fail "ensemble run with mid-run shard kill failed" \
       "$WORK_DIR/fleet_kill.log" "$WORK_DIR/c.log"
wait "$KILLER_PID" 2>/dev/null
wait "$C_PID" 2>/dev/null  # the port must be released before the restart
cmp "$WORK_DIR/golden_ensemble.json" "$WORK_DIR/kill_ensemble.json" \
  || fail "ensemble bytes diverged across a shard kill" \
       "$WORK_DIR/golden_ensemble.json" "$WORK_DIR/kill_ensemble.json"

# Restart shard c on its old (now free) port: the fleet needs no reconfig.
"$SERVE_BIN" --port "$C_PORT" --port-file "$WORK_DIR/c2.port" --workers 2 \
  --shard-id c2 >"$WORK_DIR/c2.log" 2>&1 &
C2_PID=$!
PIDS+=("$C2_PID")
wait_for_port_file "$WORK_DIR/c2.port" "$C2_PID" "restarted shard c"
"$FLEET_BIN" --shards "$A_PORT,$C_PORT" "${ENSEMBLE_ARGS[@]}" \
  --json "$WORK_DIR/restart_ensemble.json" >"$WORK_DIR/fleet_restart.log" 2>&1 \
  || fail "ensemble run after shard restart failed" \
       "$WORK_DIR/fleet_restart.log" "$WORK_DIR/c2.log"
cmp "$WORK_DIR/golden_ensemble.json" "$WORK_DIR/restart_ensemble.json" \
  || fail "ensemble bytes diverged after shard restart" \
       "$WORK_DIR/golden_ensemble.json" "$WORK_DIR/restart_ensemble.json"

# --- drain one shard; remaining capacity must reproduce the bytes ----------
"$FLEET_BIN" --shards "$B_PORT" --mode drain --json "$WORK_DIR/drain.json" \
  >"$WORK_DIR/fleet_drain.log" 2>&1 \
  || fail "drain failed" "$WORK_DIR/fleet_drain.log" "$WORK_DIR/b.log"
grep -q '"draining":true' "$WORK_DIR/drain.json" \
  || fail "drain did not flip the shard" "$WORK_DIR/drain.json"
"$FLEET_BIN" --shards "$A_PORT,$B_PORT" "${ENSEMBLE_ARGS[@]}" \
  --json "$WORK_DIR/drained_ensemble.json" >>"$WORK_DIR/fleet_drain.log" 2>&1 \
  || fail "ensemble run with a drained shard failed" \
       "$WORK_DIR/fleet_drain.log" "$WORK_DIR/b.log"
cmp "$WORK_DIR/golden_ensemble.json" "$WORK_DIR/drained_ensemble.json" \
  || fail "ensemble bytes diverged with a drained shard" \
       "$WORK_DIR/golden_ensemble.json" "$WORK_DIR/drained_ensemble.json"

echo "PASS: fleet chaos round trip clean (shards $A_PORT/$B_PORT/$C_PORT, proxies $PB_PORT/$PC_PORT)"
exit 0
