#!/usr/bin/env bash
# Full-service round trip used by ctest and CI:
#   1. start mrsc_serve on an ephemeral port,
#   2. drive it with mrsc_loadgen (a corpus small enough that the run
#      revisits every request, so cache hits are guaranteed),
#   3. SIGTERM the server and demand a clean exit-0 shutdown,
#   4. assert zero loadgen errors and >= 1 server cache hit.
#
# Usage: serve_roundtrip.sh <mrsc_serve> <mrsc_loadgen>
set -u

SERVE_BIN=${1:?usage: serve_roundtrip.sh <mrsc_serve> <mrsc_loadgen>}
LOADGEN_BIN=${2:?usage: serve_roundtrip.sh <mrsc_serve> <mrsc_loadgen>}

WORK_DIR=$(mktemp -d)
trap 'kill "$SERVER_PID" 2>/dev/null; rm -rf "$WORK_DIR"' EXIT

"$SERVE_BIN" --port-file "$WORK_DIR/port" --workers 2 >"$WORK_DIR/serve.log" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 100); do
  [ -s "$WORK_DIR/port" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { echo "FAIL: server died on startup"; cat "$WORK_DIR/serve.log"; exit 1; }
  sleep 0.1
done
PORT=$(cat "$WORK_DIR/port")
[ -n "$PORT" ] || { echo "FAIL: no port written"; exit 1; }

"$LOADGEN_BIN" --port "$PORT" --rate 60 --duration 2 \
  --json "$WORK_DIR/loadgen.json"
LOADGEN_EXIT=$?
if [ "$LOADGEN_EXIT" -ne 0 ]; then
  echo "FAIL: loadgen exited $LOADGEN_EXIT"
  cat "$WORK_DIR/serve.log"
  exit 1
fi

kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
SERVER_EXIT=$?
if [ "$SERVER_EXIT" -ne 0 ]; then
  echo "FAIL: server exited $SERVER_EXIT after SIGTERM"
  cat "$WORK_DIR/serve.log"
  exit 1
fi

# The report embeds the server stats; a corpus of 6 requests replayed for
# 2 s at 60 rps must produce cache hits and zero errors.
grep -q '"errors": 0,' "$WORK_DIR/loadgen.json" || {
  echo "FAIL: loadgen reported errors"; cat "$WORK_DIR/loadgen.json"; exit 1; }
grep -q '"hits":0' "$WORK_DIR/loadgen.json" && {
  echo "FAIL: no server cache hits"; cat "$WORK_DIR/loadgen.json"; exit 1; }
grep -q '"protocol_errors":0' "$WORK_DIR/loadgen.json" || {
  echo "FAIL: server saw protocol errors"; cat "$WORK_DIR/loadgen.json"; exit 1; }

echo "PASS: round trip clean (port $PORT)"
exit 0
