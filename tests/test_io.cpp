#include "core/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "compile/passes.hpp"
#include "core/builder.hpp"
#include "dsp/counter.hpp"
#include "dsp/filters.hpp"
#include "fsm/fsm.hpp"

namespace mrsc::core {
namespace {

ReactionNetwork sample_network() {
  ReactionNetwork net;
  net.set_rate_policy(RatePolicy{0.5, 250.0});
  NetworkBuilder builder(net);
  builder.species("X", 1.25);
  builder.reaction("0 -> r", RateCategory::kSlow, "ind.gen");
  builder.reaction("r + X -> X", RateCategory::kFast);
  builder.reaction("2 X -> Y", 3.5, "halve");
  return net;
}

TEST(NetworkIo, SerializeContainsEverything) {
  const std::string text = serialize_network(sample_network());
  EXPECT_NE(text.find("@rates slow=0.5 fast=250"), std::string::npos);
  EXPECT_NE(text.find("@species X 1.25"), std::string::npos);
  EXPECT_NE(text.find("slow : 0 -> r | ind.gen"), std::string::npos);
  EXPECT_NE(text.find("3.5 : 2 X -> Y | halve"), std::string::npos);
}

TEST(NetworkIo, RoundTripPreservesStructure) {
  const ReactionNetwork original = sample_network();
  const ReactionNetwork parsed = parse_network(serialize_network(original));

  ASSERT_EQ(parsed.species_count(), original.species_count());
  ASSERT_EQ(parsed.reaction_count(), original.reaction_count());
  EXPECT_DOUBLE_EQ(parsed.rate_policy().k_slow, 0.5);
  EXPECT_DOUBLE_EQ(parsed.rate_policy().k_fast, 250.0);

  // Species ids are stable across the round trip.
  for (std::size_t i = 0; i < original.species_count(); ++i) {
    const SpeciesId id{static_cast<SpeciesId::underlying_type>(i)};
    EXPECT_EQ(parsed.species_name(id), original.species_name(id));
    EXPECT_DOUBLE_EQ(parsed.initial(id), original.initial(id));
  }
  for (std::size_t j = 0; j < original.reaction_count(); ++j) {
    const ReactionId id{static_cast<ReactionId::underlying_type>(j)};
    EXPECT_EQ(parsed.reaction(id).category(), original.reaction(id).category());
    EXPECT_EQ(parsed.reaction(id).label(), original.reaction(id).label());
    EXPECT_EQ(parsed.reaction(id).reactants(),
              original.reaction(id).reactants());
    EXPECT_EQ(parsed.reaction(id).products(), original.reaction(id).products());
  }
}

TEST(NetworkIo, DoubleRoundTripIsIdentity) {
  const std::string once = serialize_network(sample_network());
  const std::string twice = serialize_network(parse_network(once));
  EXPECT_EQ(once, twice);
}

TEST(NetworkIo, ParseComments) {
  const ReactionNetwork net = parse_network(
      "# a comment\n"
      "@species A 1 # trailing comment\n"
      "fast : A -> 0\n");
  EXPECT_EQ(net.species_count(), 1u);
  EXPECT_EQ(net.reaction_count(), 1u);
}

TEST(NetworkIo, ParseErrorsCarryLineNumbers) {
  try {
    (void)parse_network("@species A\nnonsense without colon\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos);
  }
}

TEST(NetworkIo, ParseRejectsDuplicateSpecies) {
  EXPECT_THROW((void)parse_network("@species A\n@species A\n"),
               std::invalid_argument);
}

TEST(NetworkIo, ParseRejectsBadRatesKey) {
  EXPECT_THROW((void)parse_network("@rates medium=3\n"), std::invalid_argument);
}

TEST(NetworkIo, ParseRejectsBadReaction) {
  EXPECT_THROW((void)parse_network("fast : A B\n"), std::invalid_argument);
}

TEST(NetworkIo, SaveAndLoadFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mrsc_io_test.crn").string();
  const ReactionNetwork original = sample_network();
  save_network(original, path);
  const ReactionNetwork loaded = load_network(path);
  EXPECT_EQ(loaded.species_count(), original.species_count());
  EXPECT_EQ(loaded.reaction_count(), original.reaction_count());
  std::remove(path.c_str());
}

TEST(NetworkIo, LoadMissingFileThrows) {
  EXPECT_THROW((void)load_network("/nonexistent/path/to/net.crn"),
               std::runtime_error);
}

TEST(NetworkIo, RateMultiplierRoundTrips) {
  ReactionNetwork net;
  NetworkBuilder builder(net);
  builder.species("A", 1.0);
  const ReactionId id = builder.reaction("A -> 0", RateCategory::kSlow);
  net.reaction_mutable(id).set_rate_multiplier(0.25);
  builder.reaction("0 -> A", 3.0);

  const std::string text = serialize_network(net);
  EXPECT_NE(text.find("slow*0.25 : A -> 0"), std::string::npos) << text;
  const ReactionNetwork parsed = parse_network(text);
  EXPECT_DOUBLE_EQ(parsed.reaction(id).rate_multiplier(), 0.25);
  EXPECT_DOUBLE_EQ(parsed.reaction(ReactionId{1}).rate_multiplier(), 1.0);
  EXPECT_EQ(text, serialize_network(parsed));
}

TEST(NetworkIo, ParseRejectsBadRateMultiplier) {
  EXPECT_THROW((void)parse_network("@species A\nslow*x : A -> 0\n"),
               std::invalid_argument);
}

// Compiled circuits must survive serialize/parse with identical structure —
// including the clock's stretched-hop rate multipliers, which the text
// format's "*<multiplier>" suffix carries.
void expect_round_trip_identity(const ReactionNetwork& compiled) {
  const std::string once = serialize_network(compiled);
  const ReactionNetwork parsed = parse_network(once);
  ASSERT_EQ(parsed.species_count(), compiled.species_count());
  ASSERT_EQ(parsed.reaction_count(), compiled.reaction_count());
  for (std::size_t j = 0; j < compiled.reaction_count(); ++j) {
    const ReactionId id{static_cast<ReactionId::underlying_type>(j)};
    EXPECT_DOUBLE_EQ(parsed.reaction(id).rate_multiplier(),
                     compiled.reaction(id).rate_multiplier());
  }
  EXPECT_EQ(once, serialize_network(parsed));
}

TEST(NetworkIo, CompiledCounterRoundTrips) {
  ReactionNetwork net;
  (void)dsp::build_counter(net, dsp::CounterSpec{});
  expect_round_trip_identity(net);
}

TEST(NetworkIo, CompiledMovingAverageRoundTrips) {
  const auto design = dsp::make_moving_average();
  expect_round_trip_identity(*design.network);
}

TEST(NetworkIo, CompiledOptimizedMovingAverageRoundTrips) {
  compile::CompileOptions options;
  options.opt = compile::OptLevel::kO1;
  const auto design = dsp::make_moving_average({}, options);
  expect_round_trip_identity(*design.network);
}

TEST(NetworkIo, CompiledSequenceDetectorRoundTrips) {
  ReactionNetwork net;
  const fsm::FsmSpec spec = fsm::make_sequence_detector("101");
  (void)fsm::build_fsm(net, spec);
  expect_round_trip_identity(net);
}

}  // namespace
}  // namespace mrsc::core
