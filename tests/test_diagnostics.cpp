// Tests for the CircuitBuilder single-use diagnostics: a violation must name
// the signal's definition site and BOTH use sites so the design bug is
// findable without bisecting the builder calls.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/network.hpp"
#include "sync/circuit.hpp"

namespace mrsc::sync {
namespace {

// Every builder call in this file sits on a distinct line; the diagnostics
// quote "file:line" for each site, so the test can assert that all three
// sites (definition, first use, second use) appear in the message.
std::string line_tag(unsigned line) {
  return ":" + std::to_string(line);
}

TEST(Diagnostics, DoubleConsumeCitesDefinitionAndBothUseSites) {
  CircuitBuilder b;
  const unsigned defined_line = __LINE__ + 1;
  Sig x = b.input("x");
  const unsigned first_use_line = __LINE__ + 1;
  Sig y = b.input("y");
  Sig sum = b.add(x, y);
  b.discard(sum);
  try {
    const unsigned second_use_line = __LINE__ + 1;
    (void)b.add(x, b.input("z"));
    FAIL() << "second consume of x should throw";
    (void)second_use_line;
  } catch (const std::logic_error& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("consumed twice"), std::string::npos) << message;
    EXPECT_NE(message.find("defined at"), std::string::npos) << message;
    EXPECT_NE(message.find(line_tag(defined_line)), std::string::npos)
        << message;
    // first_use_line + 1 is the add() that consumed x first.
    EXPECT_NE(message.find(line_tag(first_use_line + 1)), std::string::npos)
        << message;
    // The hint toward the fix is part of the contract.
    EXPECT_NE(message.find("fanout"), std::string::npos) << message;
    // The message names this file, not the builder internals.
    EXPECT_NE(message.find("test_diagnostics.cpp"), std::string::npos)
        << message;
  }
}

TEST(Diagnostics, SecondUseSiteIsQuoted) {
  CircuitBuilder b;
  Sig x = b.input("x");
  b.output("first", x);
  unsigned second_line = 0;
  try {
    second_line = __LINE__ + 1;
    b.output("second", x);
    FAIL() << "second consume should throw";
  } catch (const std::logic_error& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("second consumer: output"), std::string::npos)
        << message;
    EXPECT_NE(message.find(line_tag(second_line)), std::string::npos)
        << message;
  }
}

TEST(Diagnostics, DoubleReadCitesDeclarationAndBothReads) {
  CircuitBuilder b;
  const unsigned declared_line = __LINE__ + 1;
  Reg r = b.add_register("acc", 1.0);
  const unsigned first_read_line = __LINE__ + 1;
  Sig v = b.read(r);
  b.discard(v);
  try {
    (void)b.read(r);
    FAIL() << "second read should throw";
  } catch (const std::logic_error& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("read twice"), std::string::npos) << message;
    EXPECT_NE(message.find(line_tag(declared_line)), std::string::npos)
        << message;
    EXPECT_NE(message.find(line_tag(first_read_line)), std::string::npos)
        << message;
  }
}

TEST(Diagnostics, DoubleWriteCitesBothWrites) {
  CircuitBuilder b;
  Reg r = b.add_register("acc");
  const unsigned first_write_line = __LINE__ + 1;
  b.write(r, b.input("a"));
  try {
    b.write(r, b.input("b"));
    FAIL() << "second write should throw";
  } catch (const std::logic_error& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("written twice"), std::string::npos) << message;
    EXPECT_NE(message.find(line_tag(first_write_line)), std::string::npos)
        << message;
  }
}

TEST(Diagnostics, DanglingSignalCitesDefinitionSite) {
  CircuitBuilder b;
  const unsigned defined_line = __LINE__ + 1;
  (void)b.input("x");
  core::ReactionNetwork net;
  try {
    (void)b.compile(net);
    FAIL() << "dangling signal should fail compile()";
  } catch (const std::logic_error& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("never consumed"), std::string::npos) << message;
    EXPECT_NE(message.find(line_tag(defined_line)), std::string::npos)
        << message;
    EXPECT_NE(message.find("discard()"), std::string::npos) << message;
  }
}

TEST(Diagnostics, UnreadRegisterCitesDeclaration) {
  CircuitBuilder b;
  const unsigned declared_line = __LINE__ + 1;
  Reg r = b.add_register("orphan");
  b.write(r, b.input("x"));
  core::ReactionNetwork net;
  try {
    (void)b.compile(net);
    FAIL() << "unread register should fail compile()";
  } catch (const std::logic_error& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("never read"), std::string::npos) << message;
    EXPECT_NE(message.find("orphan"), std::string::npos) << message;
    EXPECT_NE(message.find(line_tag(declared_line)), std::string::npos)
        << message;
  }
}

}  // namespace
}  // namespace mrsc::sync
