#include "sim/ode.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/builder.hpp"

namespace mrsc::sim {
namespace {

using core::NetworkBuilder;
using core::RateCategory;
using core::ReactionNetwork;
using core::SpeciesId;

ReactionNetwork decay_network(double k) {
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.species("A", 1.0);
  b.reaction("A -> B", k);
  return net;
}

// All three integrators should reproduce A(t) = e^{-k t}.
class IntegratorTest : public ::testing::TestWithParam<OdeMethod> {};

TEST_P(IntegratorTest, ExponentialDecayMatchesAnalytic) {
  const double k = 0.7;
  const ReactionNetwork net = decay_network(k);
  OdeOptions options;
  options.method = GetParam();
  options.t_end = 4.0;
  options.dt = 1e-3;
  options.record_interval = 0.5;
  const OdeResult result = simulate_ode(net, options);
  const SpeciesId a = *net.find_species("A");
  for (std::size_t s = 0; s < result.trajectory.sample_count(); ++s) {
    const double t = result.trajectory.time(s);
    EXPECT_NEAR(result.trajectory.value(s, a), std::exp(-k * t), 2e-3)
        << "t=" << t;
  }
}

TEST_P(IntegratorTest, MassConservation) {
  const ReactionNetwork net = decay_network(1.0);
  OdeOptions options;
  options.method = GetParam();
  options.t_end = 3.0;
  options.dt = 1e-3;
  const OdeResult result = simulate_ode(net, options);
  const SpeciesId a = *net.find_species("A");
  const SpeciesId b = *net.find_species("B");
  for (std::size_t s = 0; s < result.trajectory.sample_count(); ++s) {
    EXPECT_NEAR(result.trajectory.value(s, a) + result.trajectory.value(s, b),
                1.0, 1e-4);
  }
}

TEST_P(IntegratorTest, ReversibleReactionReachesEquilibrium) {
  // A <-> B with k+ = 2, k- = 1 : equilibrium B/A = 2.
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.species("A", 1.0);
  b.reaction("A -> B", 2.0);
  b.reaction("B -> A", 1.0);
  OdeOptions options;
  options.method = GetParam();
  options.t_end = 20.0;
  options.dt = 1e-3;
  const OdeResult result = simulate_ode(net, options);
  EXPECT_NEAR(result.trajectory.final_value(*net.find_species("A")), 1.0 / 3.0,
              1e-3);
  EXPECT_NEAR(result.trajectory.final_value(*net.find_species("B")), 2.0 / 3.0,
              1e-3);
}

INSTANTIATE_TEST_SUITE_P(Methods, IntegratorTest,
                         ::testing::Values(OdeMethod::kRk4Fixed,
                                           OdeMethod::kDormandPrince45,
                                           OdeMethod::kBackwardEuler));

TEST(OdeSimulation, ZeroOrderSourceGrowsLinearly) {
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.reaction("0 -> A", 0.5);
  OdeOptions options;
  options.t_end = 4.0;
  const OdeResult result = simulate_ode(net, options);
  EXPECT_NEAR(result.trajectory.final_value(*net.find_species("A")), 2.0,
              1e-6);
}

TEST(OdeSimulation, BimolecularAnnihilationLeavesExcess) {
  // A + B -> 0 with A0=2, B0=1: final A = 1, B = 0.
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.species("A", 2.0);
  b.species("B", 1.0);
  b.reaction("A + B -> 0", 50.0);
  OdeOptions options;
  options.t_end = 10.0;
  const OdeResult result = simulate_ode(net, options);
  EXPECT_NEAR(result.trajectory.final_value(*net.find_species("A")), 1.0,
              1e-2);
  EXPECT_NEAR(result.trajectory.final_value(*net.find_species("B")), 0.0,
              1e-2);
}

TEST(OdeSimulation, StiffFastSlowSeparation) {
  // Fast equilibration feeding a slow drain; the adaptive and implicit
  // integrators must agree.
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.species("A", 1.0);
  b.reaction("A -> B", RateCategory::kFast);
  b.reaction("B -> C", RateCategory::kSlow);
  net.set_rate_policy(core::RatePolicy{1.0, 10000.0});

  OdeOptions adaptive;
  adaptive.t_end = 2.0;
  const double c_adaptive =
      simulate_ode(net, adaptive)
          .trajectory.final_value(*net.find_species("C"));

  OdeOptions implicit;
  implicit.method = OdeMethod::kBackwardEuler;
  implicit.t_end = 2.0;
  implicit.dt = 1e-3;
  const double c_implicit =
      simulate_ode(net, implicit)
          .trajectory.final_value(*net.find_species("C"));

  const double expected = 1.0 - std::exp(-2.0);  // B -> C dominates
  EXPECT_NEAR(c_adaptive, expected, 5e-3);
  EXPECT_NEAR(c_implicit, expected, 5e-3);
}

TEST(OdeSimulation, RecordIntervalControlsSampleCount) {
  const ReactionNetwork net = decay_network(1.0);
  OdeOptions options;
  options.t_end = 10.0;
  options.record_interval = 1.0;
  const OdeResult result = simulate_ode(net, options);
  // Roughly one sample per unit time plus endpoints.
  EXPECT_GE(result.trajectory.sample_count(), 10u);
  EXPECT_LE(result.trajectory.sample_count(), 14u);
}

TEST(OdeSimulation, RecordEveryStepWhenIntervalZero) {
  const ReactionNetwork net = decay_network(1.0);
  OdeOptions options;
  options.t_end = 1.0;
  options.record_interval = 0.0;
  options.method = OdeMethod::kRk4Fixed;
  options.dt = 0.1;
  const OdeResult result = simulate_ode(net, options);
  // t=0 plus ~10 steps (floating-point accumulation may add one residual
  // step at the end).
  EXPECT_GE(result.trajectory.sample_count(), 11u);
  EXPECT_LE(result.trajectory.sample_count(), 12u);
}

TEST(OdeSimulation, ObserverInjectionChangesState) {
  const ReactionNetwork net = decay_network(1.0);
  const SpeciesId a = *net.find_species("A");
  ScheduledInjector injector({{1.0, a, 5.0}});
  Observer* observers[] = {&injector};
  OdeOptions options;
  options.t_end = 1.2;
  const OdeResult result = simulate_ode(
      net, options, net.initial_state(),
      std::span<Observer* const>(observers, 1));
  // At t=1 A ~ e^-1 ~ 0.37, injection adds 5.
  EXPECT_GT(result.trajectory.final_value(a), 4.0);
}

TEST(OdeSimulation, ObserverCanStopEarly) {
  const ReactionNetwork net = decay_network(1.0);
  SteadyStateDetector detector(1e-6, 0.5);
  Observer* observers[] = {&detector};
  OdeOptions options;
  options.t_end = 1000.0;
  const OdeResult result = simulate_ode(
      net, options, net.initial_state(),
      std::span<Observer* const>(observers, 1));
  EXPECT_TRUE(result.stopped_by_observer);
  EXPECT_LT(result.end_time, 100.0);
}

TEST(OdeSimulation, NegativeConcentrationsClamped) {
  // Aggressive fixed step on a fast decay would overshoot below zero.
  const ReactionNetwork net = decay_network(100.0);
  OdeOptions options;
  options.method = OdeMethod::kRk4Fixed;
  options.dt = 0.05;
  options.t_end = 2.0;
  const OdeResult result = simulate_ode(net, options);
  for (std::size_t s = 0; s < result.trajectory.sample_count(); ++s) {
    EXPECT_GE(result.trajectory.value(s, *net.find_species("A")), 0.0);
  }
}

TEST(OdeSimulation, InvalidOptionsThrow) {
  const ReactionNetwork net = decay_network(1.0);
  OdeOptions bad_t;
  bad_t.t_end = 0.0;
  EXPECT_THROW((void)simulate_ode(net, bad_t), std::invalid_argument);
  OdeOptions bad_dt;
  bad_dt.dt = 0.0;
  EXPECT_THROW((void)simulate_ode(net, bad_dt), std::invalid_argument);
}

TEST(OdeSimulation, InitialStateSizeMismatchThrows) {
  const ReactionNetwork net = decay_network(1.0);
  OdeOptions options;
  EXPECT_THROW((void)simulate_ode(net, options, std::vector<double>{1.0, 2.0,
                                                                    3.0}),
               std::invalid_argument);
}

TEST(OdeSimulation, AdaptiveReportsRejectedSteps) {
  // A stiff-ish system with a loose initial step forces rejections.
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.species("A", 1.0);
  b.reaction("A -> B", 500.0);
  OdeOptions options;
  options.t_end = 1.0;
  options.dt = 0.5;  // far too big initially
  const OdeResult result = simulate_ode(net, options);
  EXPECT_GT(result.steps_accepted, 0u);
  EXPECT_GT(result.steps_rejected, 0u);
}

TEST(OdeSimulation, StepLimitReported) {
  const ReactionNetwork net = decay_network(1.0);
  OdeOptions options;
  options.method = OdeMethod::kRk4Fixed;
  options.dt = 1e-4;
  options.t_end = 100.0;
  options.max_steps = 50;  // far too few
  const OdeResult result = simulate_ode(net, options);
  EXPECT_TRUE(result.hit_step_limit);
  EXPECT_LT(result.end_time, 1.0);
}

TEST(OdeSimulation, FinalStateRecordedAtTEnd) {
  const ReactionNetwork net = decay_network(1.0);
  OdeOptions options;
  options.t_end = 2.0;
  options.record_interval = 0.75;
  const OdeResult result = simulate_ode(net, options);
  EXPECT_DOUBLE_EQ(result.trajectory.final_time(), result.end_time);
  EXPECT_NEAR(result.end_time, 2.0, 1e-9);
}

}  // namespace
}  // namespace mrsc::sim
