#include "core/reaction.hpp"

#include <gtest/gtest.h>

namespace mrsc::core {
namespace {

TEST(RateCategory, Names) {
  EXPECT_STREQ(to_string(RateCategory::kCustom), "custom");
  EXPECT_STREQ(to_string(RateCategory::kSlow), "slow");
  EXPECT_STREQ(to_string(RateCategory::kFast), "fast");
}

TEST(RatePolicy, ResolvesCategories) {
  RatePolicy policy{2.0, 500.0};
  EXPECT_DOUBLE_EQ(policy.value_of(RateCategory::kSlow, 99.0), 2.0);
  EXPECT_DOUBLE_EQ(policy.value_of(RateCategory::kFast, 99.0), 500.0);
  EXPECT_DOUBLE_EQ(policy.value_of(RateCategory::kCustom, 99.0), 99.0);
}

TEST(Reaction, Order) {
  // 2A + B -> C has kinetic order 3.
  Reaction r({{SpeciesId{0}, 2}, {SpeciesId{1}, 1}}, {{SpeciesId{2}, 1}},
             RateCategory::kFast);
  EXPECT_EQ(r.order(), 3u);
}

TEST(Reaction, ZeroOrderSource) {
  Reaction r({}, {{SpeciesId{0}, 1}}, RateCategory::kSlow);
  EXPECT_EQ(r.order(), 0u);
  EXPECT_TRUE(r.reactants().empty());
}

TEST(Reaction, NetChange) {
  // 2A + B -> A + 3C : net A = -1, B = -1, C = +3, D = 0.
  Reaction r({{SpeciesId{0}, 2}, {SpeciesId{1}, 1}},
             {{SpeciesId{0}, 1}, {SpeciesId{2}, 3}}, RateCategory::kFast);
  EXPECT_EQ(r.net_change(SpeciesId{0}), -1);
  EXPECT_EQ(r.net_change(SpeciesId{1}), -1);
  EXPECT_EQ(r.net_change(SpeciesId{2}), 3);
  EXPECT_EQ(r.net_change(SpeciesId{3}), 0);
}

TEST(Reaction, ConsumesProduces) {
  Reaction r({{SpeciesId{0}, 1}}, {{SpeciesId{1}, 1}}, RateCategory::kSlow);
  EXPECT_TRUE(r.consumes(SpeciesId{0}));
  EXPECT_FALSE(r.consumes(SpeciesId{1}));
  EXPECT_TRUE(r.produces(SpeciesId{1}));
  EXPECT_FALSE(r.produces(SpeciesId{0}));
}

TEST(Reaction, CatalystIsBothConsumedAndProduced) {
  // C + X -> C + Y (catalyzed transfer).
  Reaction r({{SpeciesId{9}, 1}, {SpeciesId{0}, 1}},
             {{SpeciesId{9}, 1}, {SpeciesId{1}, 1}}, RateCategory::kSlow);
  EXPECT_TRUE(r.consumes(SpeciesId{9}));
  EXPECT_TRUE(r.produces(SpeciesId{9}));
  EXPECT_EQ(r.net_change(SpeciesId{9}), 0);
}

TEST(Reaction, RateMultiplierDefaultsToOne) {
  Reaction r({{SpeciesId{0}, 1}}, {}, RateCategory::kFast);
  EXPECT_DOUBLE_EQ(r.rate_multiplier(), 1.0);
  r.set_rate_multiplier(0.25);
  EXPECT_DOUBLE_EQ(r.rate_multiplier(), 0.25);
}

TEST(Reaction, LabelRoundTrip) {
  Reaction r({{SpeciesId{0}, 1}}, {}, RateCategory::kFast, 0.0, "drain");
  EXPECT_EQ(r.label(), "drain");
  r.set_label("other");
  EXPECT_EQ(r.label(), "other");
}

}  // namespace
}  // namespace mrsc::core
