// Tests for the shared compile pipeline: canonicalization, duplicate
// coalescing, dead-species elimination, the -O1 == -O0 trajectory guarantee,
// and the per-pass report.
#include "compile/passes.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "compile/context.hpp"
#include "compile/report.hpp"
#include "core/builder.hpp"
#include "dsp/filters.hpp"
#include "sim/ode.hpp"

namespace mrsc::compile {
namespace {

using core::NetworkBuilder;
using core::RateCategory;
using core::ReactionNetwork;
using core::SpeciesId;

TEST(Canonicalize, SortsAndMergesTerms) {
  ReactionNetwork net;
  NetworkBuilder builder(net);
  builder.species("A", 1.0);
  builder.species("B", 1.0);
  // Written backwards and with a repeated reactant.
  builder.reaction("B + A + A -> B + A", RateCategory::kFast);

  const auto result = optimize_network(net, {});
  ASSERT_EQ(net.reaction_count(), 1u);
  const core::Reaction& r = net.reactions()[0];
  ASSERT_EQ(r.reactants().size(), 2u);
  // Terms sorted by species id: A (2x) before B.
  EXPECT_EQ(r.reactants()[0].species, *net.find_species("A"));
  EXPECT_EQ(r.reactants()[0].stoich, 2u);
  EXPECT_EQ(r.reactants()[1].species, *net.find_species("B"));
  EXPECT_EQ(r.reactants()[1].stoich, 1u);
  EXPECT_FALSE(result.report.passes.empty());
}

TEST(CoalesceDuplicates, MergesIdenticalReactionsSummingMultipliers) {
  ReactionNetwork net;
  NetworkBuilder builder(net);
  builder.species("X", 2.0);
  builder.species("Y", 0.0);
  // Three copies of the same slow transfer (one spelled with the reactants
  // reversed, so canonicalization has to run first), one with a multiplier.
  builder.species("C", 1.0);
  builder.reaction("C + X -> C + Y", RateCategory::kSlow);
  builder.reaction("X + C -> Y + C", RateCategory::kSlow);
  const core::ReactionId third =
      builder.reaction("C + X -> C + Y", RateCategory::kSlow);
  net.reaction_mutable(third).set_rate_multiplier(0.5);
  // A different reaction that must NOT be merged (other category).
  builder.reaction("C + X -> C + Y", RateCategory::kFast);

  optimize_network(net, {});
  ASSERT_EQ(net.reaction_count(), 2u);
  double slow_multiplier = 0.0;
  for (const core::Reaction& r : net.reactions()) {
    if (r.category() == RateCategory::kSlow) {
      slow_multiplier = r.rate_multiplier();
    }
  }
  // 1.0 + 1.0 + 0.5: the merged reaction fires at the summed propensity.
  EXPECT_DOUBLE_EQ(slow_multiplier, 2.5);
}

TEST(DeadSpeciesElim, DropsUnreachableConeButKeepsRoots) {
  ReactionNetwork net;
  NetworkBuilder builder(net);
  builder.species("live", 1.0);
  builder.species("dead_in", 0.0);   // never produced, initial 0
  builder.species("dead_out", 0.0);  // only produced from dead_in
  builder.species("pinned", 0.0);    // same, but declared a root
  builder.reaction("live -> live + live", RateCategory::kSlow);
  builder.reaction("dead_in -> dead_out", RateCategory::kFast);

  const SpeciesId pinned = *net.find_species("pinned");
  const std::vector<SpeciesId> roots = {pinned};
  const auto result = optimize_network(net, roots);

  EXPECT_EQ(net.species_count(), 2u);  // live + pinned survive
  EXPECT_EQ(net.reaction_count(), 1u);
  EXPECT_TRUE(net.find_species("live").has_value());
  EXPECT_TRUE(net.find_species("pinned").has_value());
  EXPECT_FALSE(net.find_species("dead_in").has_value());
  // The remap reports the eliminations (original ids 1 and 2).
  ASSERT_EQ(result.remap.size(), 4u);
  EXPECT_NE(result.remap[0], SpeciesId::invalid());
  EXPECT_EQ(result.remap[1], SpeciesId::invalid());
  EXPECT_EQ(result.remap[2], SpeciesId::invalid());
  EXPECT_EQ(net.species_name(result.remap[3]), "pinned");
}

TEST(DeadSpeciesElim, RemapTracksSurvivors) {
  ReactionNetwork net;
  NetworkBuilder builder(net);
  builder.species("gone", 0.0);
  builder.species("kept", 1.0);
  builder.reaction("kept -> 2 kept", RateCategory::kSlow);

  const auto result = optimize_network(net, {});
  ASSERT_EQ(result.remap.size(), 2u);
  EXPECT_EQ(result.remap[0], SpeciesId::invalid());
  EXPECT_EQ(net.species_name(result.remap[1]), "kept");
}

// The headline pipeline guarantee: compiling a real design at kO1 must give
// the same deterministic trajectory for every interface species as kO0.
TEST(Pipeline, MovingAverageO1MatchesO0Trajectory) {
  auto plain = dsp::make_moving_average();
  compile::CompileOptions o1;
  o1.opt = compile::OptLevel::kO1;
  auto optimized = dsp::make_moving_average({}, o1);

  EXPECT_LE(optimized.network->species_count(), plain.network->species_count());

  sim::OdeOptions ode;
  ode.method = sim::OdeMethod::kRk4Fixed;
  ode.t_end = 40.0;
  ode.dt = 1e-3;
  ode.record_interval = 0.5;
  const auto base = sim::simulate_ode(*plain.network, ode);
  const auto opt = sim::simulate_ode(*optimized.network, ode);

  ASSERT_EQ(base.trajectory.sample_count(), opt.trajectory.sample_count());
  for (const auto& [name, plain_id] : plain.circuit.outputs) {
    const SpeciesId opt_id = optimized.circuit.output(name);
    for (std::size_t k = 0; k < base.trajectory.sample_count(); ++k) {
      ASSERT_NEAR(base.trajectory.value(k, plain_id),
                  opt.trajectory.value(k, opt_id), 1e-9)
          << name << " diverges at sample " << k;
    }
  }
}

// assume_zero_inputs: promising the unused negative input rail of the
// first-difference filter stays zero lets DSE delete its whole cone.
TEST(Pipeline, AssumeZeroInputShrinksFirstDifference) {
  compile::CompileOptions o1;
  o1.opt = compile::OptLevel::kO1;
  auto base = dsp::make_first_difference({}, o1);

  compile::CompileOptions assume = o1;
  assume.assume_zero_inputs = {"x_n"};
  compile::CompileReport report;
  assume.report = &report;
  auto shrunk = dsp::make_first_difference({}, assume);

  EXPECT_LT(shrunk.network->reaction_count(), base.network->reaction_count());
  EXPECT_LT(shrunk.network->species_count(), base.network->species_count());
  // The assumed-zero port vanishes from the handle map...
  EXPECT_EQ(shrunk.circuit.inputs.count("x_n"), 0u);
  // ...while the live interface stays addressable.
  EXPECT_TRUE(shrunk.circuit.inputs.count("x_p"));
  EXPECT_TRUE(shrunk.circuit.outputs.count("y_p"));
  EXPECT_TRUE(shrunk.circuit.outputs.count("y_n"));
  EXPECT_GT(report.before.reactions, report.after.reactions);

  // Trajectory equivalence still holds when x_n really is never driven.
  sim::OdeOptions ode;
  ode.method = sim::OdeMethod::kRk4Fixed;
  ode.t_end = 40.0;
  ode.dt = 1e-3;
  ode.record_interval = 0.5;
  const auto full = sim::simulate_ode(*base.network, ode);
  const auto cut = sim::simulate_ode(*shrunk.network, ode);
  for (const std::string name : {"y_p", "y_n"}) {
    const SpeciesId a = base.circuit.output(name);
    const SpeciesId b = shrunk.circuit.output(name);
    for (std::size_t k = 0; k < full.trajectory.sample_count(); ++k) {
      ASSERT_NEAR(full.trajectory.value(k, a), cut.trajectory.value(k, b),
                  1e-9);
    }
  }
}

TEST(Validate, UngatedSlowTransferThrows) {
  ReactionNetwork net;
  LoweringContext ctx(net, "bad");
  const SpeciesId from = ctx.species("from", 1.0);
  const SpeciesId to = ctx.species("to");
  const SpeciesId gate = ctx.species("gate", 1.0);
  // A gated transfer whose gate was never declared a clock root: the
  // validation pass cannot prove the slow transfer is phase-gated.
  ctx.gated_transfer(from, to, gate, "bad.hop");
  CompileOptions options;  // validate = true
  EXPECT_THROW((void)ctx.finalize(options), std::logic_error);
}

TEST(Validate, GatedTransferWithClockRootPasses) {
  ReactionNetwork net;
  LoweringContext ctx(net, "ok");
  const SpeciesId from = ctx.species("from", 1.0);
  const SpeciesId to = ctx.species("to");
  const SpeciesId gate = ctx.species("gate", 1.0);
  ctx.declare_root(gate, PortRole::kClock);
  ctx.declare_root(from, PortRole::kInput);
  ctx.declare_root(to, PortRole::kOutput);
  ctx.gated_transfer(from, to, gate, "ok.hop");
  CompileOptions options;
  EXPECT_NO_THROW((void)ctx.finalize(options));
}

TEST(Report, RecordsEveryPassAndSerializes) {
  compile::CompileOptions options;
  options.opt = compile::OptLevel::kO1;
  compile::CompileReport report;
  options.report = &report;
  auto design = dsp::make_moving_average({}, options);

  EXPECT_EQ(report.design, "ma");
  EXPECT_GE(report.passes.size(), 4u);  // validate + the kO1 passes
  EXPECT_GT(report.before.reactions, 0u);
  EXPECT_LE(report.after.species, report.before.species);

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"design\": \"ma\""), std::string::npos);
  EXPECT_NE(json.find("\"passes\": ["), std::string::npos);
  EXPECT_NE(json.find("dead-species-elim"), std::string::npos);
  const std::string table = report.to_table();
  EXPECT_NE(table.find("total:"), std::string::npos);
}

}  // namespace
}  // namespace mrsc::compile
