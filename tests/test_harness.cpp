#include "analysis/harness.hpp"

#include <gtest/gtest.h>

#include "dsp/filters.hpp"

namespace mrsc::analysis {
namespace {

TEST(Harness, SuggestTEndScalesWithCyclesAndStretch) {
  const core::RatePolicy policy;
  const sync::ClockSpec base;
  sync::ClockSpec stretched;
  stretched.phase_stretch = 8.0;
  EXPECT_GT(suggest_t_end(base, policy, 20), suggest_t_end(base, policy, 5));
  EXPECT_GT(suggest_t_end(stretched, policy, 5),
            suggest_t_end(base, policy, 5));
}

TEST(Harness, SuggestTEndScalesWithSlowRate) {
  core::RatePolicy fast_policy;
  fast_policy.k_slow = 10.0;
  const sync::ClockSpec spec;
  EXPECT_LT(suggest_t_end(spec, fast_policy, 5),
            suggest_t_end(spec, core::RatePolicy{}, 5));
}

TEST(Harness, RunReturnsTimestampsAndPeriod) {
  auto design = dsp::make_delay_line(1);
  const std::vector<double> x = {1.0, 0.5, 0.25};
  ClockedRunOptions options;
  options.ode.t_end =
      suggest_t_end({}, design.network->rate_policy(), x.size());
  const auto result = run_clocked_circuit(*design.network, design.circuit,
                                          "x", x, "y", options);
  ASSERT_EQ(result.outputs.size(), 3u);
  ASSERT_EQ(result.input_times.size(), 3u);
  ASSERT_EQ(result.output_times.size(), 3u);
  // Outputs are sampled after their cycle's injection.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GT(result.output_times[i], result.input_times[i]);
  }
  EXPECT_GT(result.clock_period, 5.0);
  EXPECT_LT(result.clock_period, 100.0);
  // The run stops shortly after the last sample, well before t_end.
  EXPECT_LT(result.ode.end_time, options.ode.t_end);
}

TEST(Harness, ThrowsWhenBudgetTooShort) {
  auto design = dsp::make_delay_line(1);
  const std::vector<double> x = {1.0, 0.5, 0.25, 0.6, 0.7};
  ClockedRunOptions options;
  options.ode.t_end = 40.0;  // ~1 clock period: cannot fit 5 cycles
  EXPECT_THROW((void)run_clocked_circuit(*design.network, design.circuit,
                                         "x", x, "y", options),
               std::runtime_error);
}

TEST(Harness, EmptySamplesThrow) {
  auto design = dsp::make_delay_line(1);
  ClockedRunOptions options;
  EXPECT_THROW((void)run_clocked_circuit(*design.network, design.circuit,
                                         "x", {}, "y", options),
               std::invalid_argument);
}

TEST(Harness, UnknownPortsThrow) {
  auto design = dsp::make_delay_line(1);
  const std::vector<double> x = {1.0};
  ClockedRunOptions options;
  options.ode.t_end = 200.0;
  EXPECT_THROW((void)run_clocked_circuit(*design.network, design.circuit,
                                         "bogus", x, "y", options),
               std::out_of_range);
  EXPECT_THROW((void)run_clocked_circuit(*design.network, design.circuit,
                                         "x", x, "bogus", options),
               std::out_of_range);
}

TEST(Harness, CounterRunRejectsZeroIncrements) {
  core::ReactionNetwork net;
  dsp::CounterSpec spec;
  const dsp::CounterHandles handles = dsp::build_counter(net, spec);
  ClockedRunOptions options;
  EXPECT_THROW((void)run_counter(net, handles, 0, options),
               std::invalid_argument);
}

TEST(Harness, WarmupShiftsAlignment) {
  // Regardless of warmup, the sampled outputs must line up with the same
  // reference sequence (the warmup cycles see zero input).
  auto run_with_warmup = [](std::size_t warmup) {
    auto design = dsp::make_delay_line(1);
    const std::vector<double> x = {0.7, 0.3};
    ClockedRunOptions options;
    options.warmup_edges = warmup;
    options.ode.t_end =
        suggest_t_end({}, design.network->rate_policy(), x.size() + warmup);
    return run_clocked_circuit(*design.network, design.circuit, "x", x, "y",
                               options)
        .outputs;
  };
  const auto w1 = run_with_warmup(1);
  const auto w3 = run_with_warmup(3);
  ASSERT_EQ(w1.size(), w3.size());
  for (std::size_t i = 0; i < w1.size(); ++i) {
    EXPECT_NEAR(w1[i], w3[i], 0.01) << "sample " << i;
  }
}

}  // namespace
}  // namespace mrsc::analysis
