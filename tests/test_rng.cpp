#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

namespace mrsc::util {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(9);
  double acc = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / kSamples, 0.5, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(10);
  double acc = 0.0;
  constexpr int kSamples = 100000;
  const double rate = 4.0;
  for (int i = 0; i < kSamples; ++i) {
    const double v = rng.exponential(rate);
    EXPECT_GT(v, 0.0);
    acc += v;
  }
  EXPECT_NEAR(acc / kSamples, 1.0 / rate, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    const double v = rng.normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kSamples, 1.0, 0.02);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(12);
  double sum = 0.0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kSamples, 10.0, 0.05);
}

TEST(Rng, UniformBelowBounds) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_below(17), 17u);
  }
  EXPECT_EQ(rng.uniform_below(0), 0u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform_below(1), 0u);
  }
}

TEST(Rng, UniformBelowCoversRange) {
  Rng rng(14);
  std::array<int, 5> histogram{};
  for (int i = 0; i < 5000; ++i) {
    ++histogram[rng.uniform_below(5)];
  }
  for (const int count : histogram) {
    EXPECT_GT(count, 800);  // ~1000 expected per bucket
  }
}

TEST(Rng, LogUniformJitterBounds) {
  Rng rng(15);
  const double factor = 3.0;
  for (int i = 0; i < 10000; ++i) {
    const double j = rng.log_uniform_jitter(factor);
    EXPECT_GE(j, 1.0 / factor - 1e-12);
    EXPECT_LE(j, factor + 1e-12);
  }
}

TEST(Rng, LogUniformJitterLogSymmetric) {
  Rng rng(16);
  double log_sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    log_sum += std::log(rng.log_uniform_jitter(10.0));
  }
  EXPECT_NEAR(log_sum / kSamples, 0.0, 0.02);
}

TEST(Rng, UniformPositiveNeverZero) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng.uniform_positive(), 0.0);
  }
}

TEST(Rng, StreamSeedDeterministic) {
  EXPECT_EQ(Rng::stream_seed(42, 7), Rng::stream_seed(42, 7));
  EXPECT_NE(Rng::stream_seed(42, 7), Rng::stream_seed(42, 8));
  EXPECT_NE(Rng::stream_seed(42, 7), Rng::stream_seed(43, 7));
}

TEST(Rng, StreamSeedsDistinctFor10kIndices) {
  // The batch runtime hands replicate i the seed stream_seed(base, i); a
  // collision would silently duplicate a replicate.
  std::unordered_set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    seeds.insert(Rng::stream_seed(12345, i));
  }
  EXPECT_EQ(seeds.size(), 10000u);
}

TEST(Rng, StreamGeneratorsDoNotCollide) {
  // First outputs of 10k derived streams are pairwise distinct, and a derived
  // stream differs from its base.
  std::unordered_set<std::uint64_t> first_outputs;
  Rng base(99);
  const std::uint64_t base_first = Rng(99).next_u64();
  for (std::uint64_t i = 0; i < 10000; ++i) {
    Rng stream(Rng::stream_seed(99, i));
    const std::uint64_t value = stream.next_u64();
    EXPECT_NE(value, base_first);
    first_outputs.insert(value);
  }
  EXPECT_EQ(first_outputs.size(), 10000u);
}

TEST(Rng, SplitIsStableAndStreamDependent) {
  const Rng parent(123);
  Rng child_a = parent.split(0);
  Rng child_b = parent.split(0);
  Rng child_c = parent.split(1);
  const std::uint64_t a = child_a.next_u64();
  EXPECT_EQ(a, child_b.next_u64());  // split does not advance the parent
  EXPECT_NE(a, child_c.next_u64());
}

}  // namespace
}  // namespace mrsc::util
