#include "analysis/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>

#include "analysis/plot.hpp"
#include "analysis/sweep.hpp"
#include "core/builder.hpp"

namespace mrsc::analysis {
namespace {

TEST(Metrics, Rmse) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(rmse(a, b), 0.0);
  const std::vector<double> c = {2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(rmse(a, c), 1.0);
}

TEST(Metrics, MaxAbsError) {
  const std::vector<double> a = {1.0, 5.0, 3.0};
  const std::vector<double> b = {1.0, 2.0, 3.5};
  EXPECT_DOUBLE_EQ(max_abs_error(a, b), 3.0);
}

TEST(Metrics, MaxRelativeError) {
  const std::vector<double> a = {0.0, 11.0};
  const std::vector<double> b = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(max_relative_error(a, b), 0.1);
  // Floor guards tiny references.
  const std::vector<double> tiny_ref = {0.0, 0.0};
  const std::vector<double> tiny_a = {1e-12, 0.0};
  EXPECT_LE(max_relative_error(tiny_a, tiny_ref, 1e-9), 1e-3);
}

TEST(Metrics, SizeMismatchThrows) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW((void)rmse(a, b), std::invalid_argument);
  EXPECT_THROW((void)max_abs_error(a, b), std::invalid_argument);
}

TEST(Metrics, Digitize) {
  const std::vector<double> wave = {0.0, 0.3, 0.7, 0.9, 0.4, 0.1, 0.8};
  const auto bits = digitize(wave, 0.2, 0.6);
  const std::vector<bool> expected = {false, false, true, true,
                                      true,  false, true};
  EXPECT_EQ(bits, expected);
}

TEST(Metrics, DigitizeInitialHigh) {
  const std::vector<double> wave = {0.9, 0.5};
  const auto bits = digitize(wave, 0.2, 0.6);
  EXPECT_TRUE(bits[0]);
  EXPECT_TRUE(bits[1]);  // hysteresis holds through the band
}

TEST(Metrics, DigitizeBadThresholdsThrow) {
  const std::vector<double> wave = {0.5};
  EXPECT_THROW((void)digitize(wave, 0.6, 0.2), std::invalid_argument);
}

TEST(Metrics, HammingDistance) {
  const std::vector<bool> a = {true, false, true};
  const std::vector<bool> b = {true, true, false};
  EXPECT_EQ(hamming_distance(a, b), 2u);
  const std::vector<bool> short_one = {true};
  EXPECT_THROW((void)hamming_distance(a, short_one), std::invalid_argument);
}

TEST(Metrics, MeanAndStddev) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(stddev(xs), 2.138, 1e-3);
  EXPECT_THROW((void)mean(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW((void)stddev(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Sweep, AppliesJitterWithinBounds) {
  core::ReactionNetwork net;
  core::NetworkBuilder b(net);
  for (int i = 0; i < 20; ++i) {
    b.reaction("A" + std::to_string(i) + " -> B", core::RateCategory::kSlow);
  }
  util::Rng rng(1);
  apply_rate_jitter(net, 2.0, rng);
  bool any_changed = false;
  for (std::size_t j = 0; j < net.reaction_count(); ++j) {
    const double m =
        net.reaction(core::ReactionId{static_cast<std::uint32_t>(j)})
            .rate_multiplier();
    EXPECT_GE(m, 0.5 - 1e-12);
    EXPECT_LE(m, 2.0 + 1e-12);
    if (m != 1.0) any_changed = true;
  }
  EXPECT_TRUE(any_changed);
}

TEST(Sweep, JitterFactorOneClears) {
  core::ReactionNetwork net;
  core::NetworkBuilder b(net);
  b.reaction("A -> B", core::RateCategory::kSlow);
  net.reaction_mutable(core::ReactionId{0}).set_rate_multiplier(5.0);
  util::Rng rng(1);
  apply_rate_jitter(net, 1.0, rng);
  EXPECT_DOUBLE_EQ(net.reaction(core::ReactionId{0}).rate_multiplier(), 1.0);
}

TEST(Sweep, JitterComposesWithExistingMultiplier) {
  core::ReactionNetwork net;
  core::NetworkBuilder b(net);
  b.reaction("A -> B", core::RateCategory::kSlow);
  net.reaction_mutable(core::ReactionId{0}).set_rate_multiplier(0.25);
  util::Rng rng(1);
  apply_rate_jitter(net, 1.5, rng);
  const double m = net.reaction(core::ReactionId{0}).rate_multiplier();
  EXPECT_GE(m, 0.25 / 1.5 - 1e-12);
  EXPECT_LE(m, 0.25 * 1.5 + 1e-12);
}

TEST(Sweep, RunsGridAndRecordsFailures) {
  RateSweepConfig config;
  config.ratios = {10.0, 100.0};
  config.jitter_factors = {1.0, 2.0};
  const auto points = run_rate_sweep(
      config, [](const core::RatePolicy& policy, double jitter,
                 std::uint64_t) -> double {
        if (policy.k_fast > 50.0 && jitter > 1.5) {
          throw std::runtime_error("boom");
        }
        return policy.k_fast / 1000.0;
      });
  ASSERT_EQ(points.size(), 4u);
  EXPECT_FALSE(points[0].failed);
  EXPECT_DOUBLE_EQ(points[0].error, 0.01);
  EXPECT_TRUE(points[3].failed);  // ratio 100, jitter 2
  // Seeds are distinct per point.
  EXPECT_NE(points[0].seed, points[1].seed);
}

TEST(Sweep, FormatTable) {
  const std::vector<SweepPoint> points = {
      {100.0, 1.0, 1, 0.0012, false},
      {1000.0, 2.0, 2, 0.0, true},
  };
  const std::string table = format_sweep_table(points, "max error");
  EXPECT_NE(table.find("k_fast/k_slow"), std::string::npos);
  EXPECT_NE(table.find("max error"), std::string::npos);
  EXPECT_NE(table.find("1.200e-03"), std::string::npos);
  EXPECT_NE(table.find("FAILED"), std::string::npos);
}

TEST(Plot, RendersSeries) {
  Series s;
  s.label = "wave";
  for (int i = 0; i <= 50; ++i) {
    s.x.push_back(i * 0.1);
    s.y.push_back(std::sin(i * 0.1));
  }
  const std::vector<Series> series = {s};
  const std::string chart = ascii_plot(series);
  EXPECT_NE(chart.find("wave"), std::string::npos);
  EXPECT_NE(chart.find('*'), std::string::npos);
  // Has the configured number of rows plus legend/axis lines.
  EXPECT_GT(std::count(chart.begin(), chart.end(), '\n'), 18);
}

TEST(Plot, TrajectoryPlotUsesSpeciesNames) {
  core::ReactionNetwork net;
  const core::SpeciesId a = net.add_species("alpha");
  sim::Trajectory trajectory(1);
  for (int i = 0; i <= 20; ++i) {
    const double v[] = {static_cast<double>(i) / 20.0};
    trajectory.append(i * 0.1, v);
  }
  const std::vector<core::SpeciesId> ids = {a};
  const std::string chart = plot_trajectory(trajectory, net, ids);
  EXPECT_NE(chart.find("alpha"), std::string::npos);
}

TEST(Plot, WriteFileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mrsc_plot_test.csv")
          .string();
  write_file(path, "a,b\n1,2\n");
  std::ifstream file(path);
  std::string line;
  std::getline(file, line);
  EXPECT_EQ(line, "a,b");
  std::remove(path.c_str());
}

TEST(Plot, WriteFileBadPathThrows) {
  EXPECT_THROW(write_file("/nonexistent_dir/x.csv", "data"),
               std::runtime_error);
}

TEST(Plot, EmptySeriesThrows) {
  const std::vector<Series> none;
  EXPECT_THROW((void)ascii_plot(none), std::invalid_argument);
}

TEST(Plot, MismatchedSeriesThrows) {
  Series s;
  s.x = {1.0, 2.0};
  s.y = {1.0};
  const std::vector<Series> series = {s};
  EXPECT_THROW((void)ascii_plot(series), std::invalid_argument);
}

}  // namespace
}  // namespace mrsc::analysis
