#include <gtest/gtest.h>

#include "analysis/harness.hpp"
#include "analysis/metrics.hpp"
#include "dsp/filters.hpp"

namespace mrsc::dsp {
namespace {

analysis::ClockedRunOptions options_for(const core::ReactionNetwork& net,
                                        std::size_t cycles) {
  analysis::ClockedRunOptions options;
  options.ode.t_end =
      analysis::suggest_t_end({}, net.rate_policy(), cycles);
  return options;
}

std::vector<double> run_signed_fir(const Design& design,
                                   const std::vector<double>& x) {
  std::vector<analysis::PortSamples> inputs(2);
  inputs[0] = {"x_p", x};
  inputs[1] = {"x_n", std::vector<double>(x.size(), 0.0)};
  const std::vector<std::string> out_ports = {"y_p", "y_n"};
  const auto result = analysis::run_clocked_circuit_multi(
      *design.network, design.circuit, inputs, out_ports,
      options_for(*design.network, x.size()));
  return analysis::signed_series(result, "y");
}

TEST(TapValue, DyadicArithmetic) {
  EXPECT_DOUBLE_EQ(tap_value({1, 0, false}), 1.0);
  EXPECT_DOUBLE_EQ(tap_value({3, 2, false}), 0.75);
  EXPECT_DOUBLE_EQ(tap_value({1, 1, true}), -0.5);
}

TEST(ReferenceFir, Convolution) {
  const std::vector<DyadicTap> taps = {{1, 0, false}, {1, 1, true}};
  const std::vector<double> x = {1.0, 0.0, 2.0};
  const auto y = reference_fir(taps, x);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], -0.5);
  EXPECT_DOUBLE_EQ(y[2], 2.0);
}

TEST(Fir, EmptyTapsRejected) {
  const std::vector<DyadicTap> none;
  EXPECT_THROW((void)make_fir(none), std::invalid_argument);
}

TEST(Fir, PositiveTapsCompileSingleRail) {
  const std::vector<DyadicTap> taps = {{1, 1, false}, {1, 1, false}};
  const Design design = make_fir(taps);
  EXPECT_NO_THROW((void)design.circuit.output("y"));
  EXPECT_THROW((void)design.circuit.output("y_p"), std::out_of_range);
}

TEST(Fir, NegativeTapsCompileDualRail) {
  const std::vector<DyadicTap> taps = {{1, 0, false}, {1, 0, true}};
  const Design design = make_fir(taps);
  EXPECT_NO_THROW((void)design.circuit.output("y_p"));
  EXPECT_NO_THROW((void)design.circuit.output("y_n"));
}

TEST(Fir, UnsignedThreeTapMatchesReference) {
  // y[n] = x[n]/2 + x[n-1]/4 + x[n-2]/4.
  const std::vector<DyadicTap> taps = {{1, 1, false},
                                       {1, 2, false},
                                       {1, 2, false}};
  const Design design = make_fir(taps);
  const std::vector<double> x = {1.0, 0.5, 2.0, 0.0, 1.0, 0.25};
  const auto result = analysis::run_clocked_circuit(
      *design.network, design.circuit, "x", x, "y",
      options_for(*design.network, x.size()));
  EXPECT_LT(analysis::max_abs_error(result.outputs, reference_fir(taps, x)),
            0.02);
}

TEST(Fir, MovingAverageAsFirMatchesDedicatedDesign) {
  const std::vector<DyadicTap> taps = {{1, 1, false}, {1, 1, false}};
  const Design design = make_fir(taps);
  const std::vector<double> x = {1.0, 1.0, 2.0, 0.0};
  const auto result = analysis::run_clocked_circuit(
      *design.network, design.circuit, "x", x, "y",
      options_for(*design.network, x.size()));
  EXPECT_LT(analysis::max_abs_error(result.outputs,
                                    reference_moving_average(x)),
            0.02);
}

TEST(Fir, SignedHighPassMatchesReference) {
  // y[n] = x[n] - x[n-1]/2 - x[n-2]/2: a signed three-tap high-pass.
  const std::vector<DyadicTap> taps = {{1, 0, false},
                                       {1, 1, true},
                                       {1, 1, true}};
  const Design design = make_fir(taps);
  const std::vector<double> x = {1.0, 1.0, 1.0, 0.0, 2.0};
  const auto y = run_signed_fir(design, x);
  EXPECT_LT(analysis::max_abs_error(y, reference_fir(taps, x)), 0.03);
}

TEST(SignedBiquad, OscillatoryImpulseResponse) {
  const Design design = make_signed_biquad();
  const std::vector<double> x = {1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  const auto y = run_signed_fir(design, x);
  const auto expected = reference_signed_biquad(x);
  // The impulse response rings with alternating sign: 1, -0.5, 0, 0.125 ...
  EXPECT_LT(expected[1], 0.0);
  EXPECT_LT(y[1], -0.3);
  EXPECT_LT(analysis::max_abs_error(y, expected), 0.03);
}

TEST(SignedBiquad, StepResponseSettlesToDcGain) {
  const Design design = make_signed_biquad();
  const std::vector<double> x(10, 1.0);
  const auto y = run_signed_fir(design, x);
  const auto expected = reference_signed_biquad(x);
  // DC gain = 1 / (1 + 1/2 + 1/4) = 4/7.
  EXPECT_NEAR(expected.back(), 4.0 / 7.0, 0.01);
  EXPECT_LT(analysis::max_abs_error(y, expected), 0.04);
}

}  // namespace
}  // namespace mrsc::dsp
