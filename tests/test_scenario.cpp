// Scenario layer: spec grammar, .mrsc directive parsing, registry
// resolution, and the CLI-argument resolver.
//
// The registry is the single resolver behind every CLI's --scenario flag and
// the serve cache key, so these tests pin the contracts the rest of the
// toolchain leans on: canonical spellings are stable, fixed names compile
// byte-identically to the pre-registry builtin shim, and every validation
// failure is a std::invalid_argument (the CLIs' exit-2 class).
#include <gtest/gtest.h>

#include <stdexcept>
#include <variant>

#include "core/io.hpp"
#include "lint/lint.hpp"
#include "scenario/registry.hpp"
#include "scenario/scenario.hpp"
#include "tools/builtin_designs.hpp"

namespace {

using namespace mrsc;

// --- spec grammar -----------------------------------------------------------

TEST(SpecParse, CanonicalizesWhitespaceAndArguments) {
  EXPECT_EQ(scenario::parse_spec("counter").canonical(), "counter");
  EXPECT_EQ(scenario::parse_spec("  counter( 2 )  ").canonical(),
            "counter(2)");
  EXPECT_EQ(scenario::parse_spec("f(1, 2,3)").canonical(), "f(1,2,3)");
  const scenario::SpecCall call = scenario::parse_spec("cascade(4)");
  EXPECT_EQ(call.name, "cascade");
  ASSERT_EQ(call.args.size(), 1u);
  EXPECT_EQ(call.args[0], 4u);
}

TEST(SpecParse, RejectsMalformedSpecs) {
  EXPECT_THROW(scenario::parse_spec(""), std::invalid_argument);
  EXPECT_THROW(scenario::parse_spec("9lives"), std::invalid_argument);
  EXPECT_THROW(scenario::parse_spec("counter("), std::invalid_argument);
  EXPECT_THROW(scenario::parse_spec("counter()"), std::invalid_argument);
  EXPECT_THROW(scenario::parse_spec("counter(x)"), std::invalid_argument);
  EXPECT_THROW(scenario::parse_spec("counter(-1)"), std::invalid_argument);
  EXPECT_THROW(scenario::parse_spec("counter(2,)"), std::invalid_argument);
}

// --- registry validation ----------------------------------------------------

TEST(Registry, KnowsFixedNamesAndGenerators) {
  const scenario::ScenarioRegistry& registry =
      scenario::ScenarioRegistry::global();
  for (const std::string& name : registry.fixed_names()) {
    EXPECT_TRUE(registry.known(name)) << name;
    // Fixed names canonicalize to themselves: the serve cache keys minted
    // before the registry existed stay valid.
    EXPECT_EQ(registry.canonicalize(name), name);
  }
  EXPECT_TRUE(registry.known("counter(2)"));
  EXPECT_TRUE(registry.known("delay_chain(8)"));
  EXPECT_FALSE(registry.known("banana"));
  EXPECT_FALSE(registry.known("counter(99)"));   // out of range
  EXPECT_FALSE(registry.known("counter(2,3)"));  // wrong arity
  EXPECT_FALSE(registry.known("counter()"));     // malformed
  EXPECT_EQ(registry.canonicalize("counter( 2 )"), "counter(2)");
}

TEST(Registry, ValidationFailuresAreInvalidArgument) {
  const scenario::ScenarioRegistry& registry =
      scenario::ScenarioRegistry::global();
  EXPECT_THROW((void)registry.canonicalize("banana"), std::invalid_argument);
  EXPECT_THROW((void)registry.canonicalize("counter(0)"),
               std::invalid_argument);
  EXPECT_THROW((void)registry.canonicalize("cascade(99)"),
               std::invalid_argument);
  EXPECT_THROW((void)registry.canonicalize("counter(2,3)"),
               std::invalid_argument);
  EXPECT_THROW((void)registry.resolve("banana"), std::invalid_argument);
}

TEST(Registry, SmokeCatalogCoversEveryFamily) {
  const scenario::ScenarioRegistry& registry =
      scenario::ScenarioRegistry::global();
  const std::vector<std::string> catalog = registry.smoke_catalog();
  EXPECT_EQ(catalog.size(), registry.fixed_names().size() +
                                registry.generators().size());
  for (const std::string& spec : catalog) {
    EXPECT_TRUE(registry.known(spec)) << spec;
  }
}

// --- resolution -------------------------------------------------------------

TEST(Registry, FixedNamesMatchTheBuiltinShimByteForByte) {
  const scenario::ScenarioRegistry& registry =
      scenario::ScenarioRegistry::global();
  for (const std::string& name : registry.fixed_names()) {
    const scenario::ResolvedScenario resolved = registry.resolve(name);
    const tools::BuiltDesign shim = tools::build_design(name, {});
    EXPECT_EQ(core::serialize_network(*resolved.design.network),
              core::serialize_network(*shim.network))
        << name;
  }
}

TEST(Registry, ResolutionIsDeterministic) {
  const scenario::ScenarioRegistry& registry =
      scenario::ScenarioRegistry::global();
  const scenario::ResolvedScenario a = registry.resolve("cascade(3)");
  const scenario::ResolvedScenario b = registry.resolve("cascade(3)");
  EXPECT_EQ(core::serialize_network(*a.design.network),
            core::serialize_network(*b.design.network));
}

TEST(Registry, ArtifactsCarryTheConstructionHandles) {
  const scenario::ScenarioRegistry& registry =
      scenario::ScenarioRegistry::global();

  const scenario::ResolvedScenario counter = registry.resolve("counter(3)");
  const auto* counter_art =
      std::get_if<scenario::CounterArtifacts>(&counter.artifacts);
  ASSERT_NE(counter_art, nullptr);
  EXPECT_EQ(counter_art->spec.bits, 3u);
  EXPECT_EQ(counter_art->handles.one_rail.size(), 3u);

  const scenario::ResolvedScenario fsm = registry.resolve("fsm_wide(4)");
  const auto* fsm_art = std::get_if<scenario::FsmArtifacts>(&fsm.artifacts);
  ASSERT_NE(fsm_art, nullptr);
  EXPECT_EQ(fsm_art->spec.num_states, 4u);

  const scenario::ResolvedScenario chain = registry.resolve("delay_chain(2)");
  const auto* chain_art =
      std::get_if<scenario::ChainArtifacts>(&chain.artifacts);
  ASSERT_NE(chain_art, nullptr);
  EXPECT_EQ(chain_art->spec.elements, 2u);

  const scenario::ResolvedScenario iir = registry.resolve("iir");
  EXPECT_NE(std::get_if<scenario::CircuitArtifacts>(&iir.artifacts), nullptr);
}

TEST(Registry, CascadeEarnsOneCompositionCertificatePerBoundary) {
  const scenario::ScenarioRegistry& registry =
      scenario::ScenarioRegistry::global();
  const scenario::ResolvedScenario resolved = registry.resolve("cascade(4)");
  ASSERT_NE(resolved.design.composition, nullptr);

  lint::LintInput input = lint::LintInput::from_design(
      *resolved.design.network, resolved.design.info, "cascade(4)");
  input.composition = resolved.design.composition.get();
  const lint::LintReport report = lint::run_lint(input);
  std::size_t certificates = 0;
  for (const lint::Diagnostic& diagnostic : report.diagnostics) {
    if (diagnostic.id == "LINT-ISS-00") ++certificates;
  }
  // Four declared-interface layers share three boundaries; each boundary
  // gets exactly one ISS composition certificate.
  EXPECT_EQ(certificates, 3u);
}

// --- .mrsc directive format -------------------------------------------------

TEST(ScenarioText, ParsesDesignAndBudgets) {
  const scenario::Scenario parsed = scenario::parse_scenario_text(
      "# demo workload\n"
      "@scenario nightly_counter\n"
      "@describe counter at width 4 with a tight sim budget\n"
      "@design counter( 4 )\n"
      "@sim method=rk4 t_end=12.5 record=0.25 omega=400 seed=7\n"
      "@lint checks=structure,timescale werror\n"
      "@verify seeds=5 start_seed=11\n"
      "@stress design=counter fault=leak intensities=0.001,0.01 trials=2\n");
  EXPECT_EQ(parsed.name, "nightly_counter");
  EXPECT_EQ(parsed.design, "counter(4)");  // canonicalized at parse time
  ASSERT_TRUE(parsed.sim.method.has_value());
  EXPECT_EQ(*parsed.sim.method, "rk4");
  EXPECT_DOUBLE_EQ(parsed.sim.t_end.value(), 12.5);
  EXPECT_DOUBLE_EQ(parsed.sim.record.value(), 0.25);
  EXPECT_DOUBLE_EQ(parsed.sim.omega.value(), 400.0);
  EXPECT_EQ(parsed.sim.seed.value(), 7u);
  ASSERT_EQ(parsed.lint.checks.size(), 2u);
  EXPECT_EQ(parsed.lint.checks[0], "structure");
  EXPECT_TRUE(parsed.lint.werror);
  EXPECT_EQ(parsed.verify.seeds.value(), 5u);
  EXPECT_EQ(parsed.verify.start_seed.value(), 11u);
  EXPECT_EQ(parsed.stress.design, "counter");
  EXPECT_EQ(parsed.stress.fault.value(), "leak");
  ASSERT_EQ(parsed.stress.intensities.size(), 2u);
  EXPECT_EQ(parsed.stress.trials.value(), 2u);

  // Budgets ride through resolution untouched; the compiled design is the
  // registry's counter(4).
  const scenario::ResolvedScenario resolved =
      scenario::ScenarioRegistry::global().resolve(parsed);
  EXPECT_EQ(resolved.scenario.name, "nightly_counter");
  EXPECT_EQ(resolved.scenario.verify.seeds.value(), 5u);
  const scenario::ResolvedScenario direct =
      scenario::ScenarioRegistry::global().resolve("counter(4)");
  EXPECT_EQ(core::serialize_network(*resolved.design.network),
            core::serialize_network(*direct.design.network));
}

TEST(ScenarioText, ParsesInlineNetworks) {
  const scenario::Scenario parsed = scenario::parse_scenario_text(
      "@scenario tiny_decay\n"
      "@network\n"
      "@rates slow=1 fast=1000\n"
      "@species A 1\n"
      "@species B 0\n"
      "slow : A -> B\n"
      "@end\n"
      "@roots A\n"
      "@sim t_end=3\n");
  EXPECT_TRUE(parsed.design.empty());
  EXPECT_FALSE(parsed.network_text.empty());

  const scenario::ResolvedScenario resolved =
      scenario::ScenarioRegistry::global().resolve(parsed);
  EXPECT_EQ(resolved.design.network->species_count(), 2u);
  EXPECT_EQ(resolved.design.network->reaction_count(), 1u);
  ASSERT_EQ(resolved.design.info.roots.size(), 1u);
}

TEST(ScenarioText, ErrorsNameTheOffendingLine) {
  // First directive must be the header.
  EXPECT_THROW((void)scenario::parse_scenario_text("@design counter\n"),
               std::invalid_argument);
  // Unknown directive.
  EXPECT_THROW((void)scenario::parse_scenario_text(
                   "@scenario s\n@design counter\n@banana\n"),
               std::invalid_argument);
  // Unknown @sim key.
  EXPECT_THROW((void)scenario::parse_scenario_text(
                   "@scenario s\n@design counter\n@sim speed=11\n"),
               std::invalid_argument);
  // @design and @network are mutually exclusive.
  EXPECT_THROW((void)scenario::parse_scenario_text(
                   "@scenario s\n@design counter\n@network\n@end\n"),
               std::invalid_argument);
  // A @network block needs its @end.
  EXPECT_THROW((void)scenario::parse_scenario_text(
                   "@scenario s\n@network\n@species A 1\n"),
               std::invalid_argument);
  // A design spec the registry rejects fails at parse time already.
  EXPECT_THROW((void)scenario::parse_scenario_text(
                   "@scenario s\n@design counter(\n"),
               std::invalid_argument);
  // No design at all.
  EXPECT_THROW((void)scenario::parse_scenario_text("@scenario s\n"),
               std::invalid_argument);
  try {
    (void)scenario::parse_scenario_text(
        "@scenario s\n@design counter\n@sim t_end=-2\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("line 3"), std::string::npos)
        << error.what();
  }
}

// --- the CLI-argument resolver ----------------------------------------------

TEST(ResolveArgument, ServesRegistrySpecsAndScenarioFiles) {
  const scenario::ResolvedScenario spec =
      scenario::resolve_scenario_argument("counter(2)");
  EXPECT_EQ(spec.scenario.name, "counter(2)");

  const scenario::ResolvedScenario file = scenario::resolve_scenario_argument(
      std::string(MRSC_SCENARIO_DATA_DIR) + "/smoke_scenario.mrsc");
  EXPECT_EQ(file.scenario.name, "smoke_counter");
  EXPECT_EQ(file.scenario.design, "counter(2)");
  EXPECT_EQ(file.scenario.verify.seeds.value(), 2u);
}

TEST(ResolveArgument, SeparatesUsageFromRuntimeFailures) {
  // Unknown registry spec: a usage error (exit 2 in the CLIs).
  EXPECT_THROW((void)scenario::resolve_scenario_argument("banana"),
               std::invalid_argument);
  // Malformed .mrsc content: also usage.
  EXPECT_THROW((void)scenario::resolve_scenario_argument(
                   std::string(MRSC_SCENARIO_DATA_DIR) +
                   "/bad_scenario.mrsc"),
               std::invalid_argument);
  // Unreadable path: a runtime failure (exit 1).
  EXPECT_THROW((void)scenario::resolve_scenario_argument(
                   "/nonexistent/dir/missing.mrsc"),
               std::runtime_error);
}

}  // namespace
