#include "dna/dsd.hpp"

#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "sim/ode.hpp"

namespace mrsc::dna {
namespace {

using core::NetworkBuilder;
using core::ReactionNetwork;
using core::SpeciesId;

ReactionNetwork cascade() {
  // A -> B -> C with a bimolecular side branch B + D -> E.
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.species("A", 1.0);
  b.species("D", 0.4);
  b.reaction("A -> B", 1.0);
  b.reaction("B -> C", 0.5);
  b.reaction("B + D -> E", 2.0);
  return net;
}

TEST(DsdCompiler, SignalSpeciesCarryOver) {
  const DsdCompilation compiled = compile_to_dsd(cascade());
  for (const char* name : {"A", "B", "C", "D", "E"}) {
    EXPECT_TRUE(compiled.network.find_species(name).has_value()) << name;
  }
  EXPECT_DOUBLE_EQ(
      compiled.network.initial(*compiled.network.find_species("A")), 1.0);
}

TEST(DsdCompiler, SignalMapMatchesNames) {
  const ReactionNetwork formal = cascade();
  const DsdCompilation compiled = compile_to_dsd(formal);
  ASSERT_EQ(compiled.signal_map.size(), formal.species_count());
  for (std::size_t i = 0; i < formal.species_count(); ++i) {
    const SpeciesId original{static_cast<SpeciesId::underlying_type>(i)};
    EXPECT_EQ(compiled.network.species_name(compiled.signal_map[i]),
              formal.species_name(original));
  }
}

TEST(DsdCompiler, BlowUpBookkeeping) {
  const DsdCompilation compiled = compile_to_dsd(cascade());
  EXPECT_EQ(compiled.original_stats.reactions, 3u);
  // Unimolecular -> 2 reactions, bimolecular -> 4.
  EXPECT_EQ(compiled.compiled_stats.reactions, 2u + 2u + 4u);
  EXPECT_GT(compiled.compiled_stats.species,
            compiled.original_stats.species);
  EXPECT_FALSE(compiled.fuels.empty());
}

TEST(DsdCompiler, WasteTrackingOptional) {
  DsdOptions with;
  with.track_waste = true;
  DsdOptions without;
  without.track_waste = false;
  const std::size_t species_with =
      compile_to_dsd(cascade(), with).compiled_stats.species;
  const std::size_t species_without =
      compile_to_dsd(cascade(), without).compiled_stats.species;
  EXPECT_EQ(species_with, species_without + 3u);  // one waste per gate
}

TEST(DsdCompiler, RejectsTrimolecular) {
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.reaction("A + 2 B -> C", 1.0);
  EXPECT_THROW((void)compile_to_dsd(net), std::invalid_argument);
}

TEST(DsdCompiler, RejectsBadOptions) {
  DsdOptions bad_fuel;
  bad_fuel.fuel_initial = 0.0;
  EXPECT_THROW((void)compile_to_dsd(cascade(), bad_fuel),
               std::invalid_argument);
  DsdOptions bad_q;
  bad_q.q_max = -1.0;
  EXPECT_THROW((void)compile_to_dsd(cascade(), bad_q), std::invalid_argument);
}

TEST(DsdCompiler, ZeroOrderSourceCompiles) {
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.reaction("0 -> A", 0.5);
  const DsdCompilation compiled = compile_to_dsd(net);
  EXPECT_EQ(compiled.compiled_stats.reactions, 2u);
  // No zero-order reactions survive: everything is fuel-driven.
  EXPECT_EQ(compiled.compiled_stats.zero_order_sources, 0u);
}

// Behavioural equivalence: the compiled network's signal trajectories track
// the formal network while fuels last.
TEST(DsdEquivalence, CascadeTrajectoriesMatch) {
  const ReactionNetwork formal = cascade();
  DsdOptions options;
  options.fuel_initial = 200.0;  // plentiful fuel -> high fidelity
  options.q_max = 2000.0;
  const DsdCompilation compiled = compile_to_dsd(formal, options);

  sim::OdeOptions ode;
  ode.t_end = 6.0;
  ode.record_interval = 0.5;
  const sim::OdeResult formal_run = sim::simulate_ode(formal, ode);
  const sim::OdeResult dsd_run = sim::simulate_ode(compiled.network, ode);

  for (const char* name : {"A", "B", "C", "E"}) {
    const SpeciesId f = *formal.find_species(name);
    const SpeciesId d = *compiled.network.find_species(name);
    for (double t = 0.5; t <= 6.0; t += 0.5) {
      EXPECT_NEAR(dsd_run.trajectory.value_at(t, d),
                  formal_run.trajectory.value_at(t, f), 0.03)
          << name << " at t=" << t;
    }
  }
}

TEST(DsdEquivalence, ScarceFuelDegradesFidelity) {
  const ReactionNetwork formal = cascade();
  auto error_with_fuel = [&](double fuel) {
    DsdOptions options;
    options.fuel_initial = fuel;
    options.q_max = 2000.0;
    const DsdCompilation compiled = compile_to_dsd(formal, options);
    sim::OdeOptions ode;
    ode.t_end = 6.0;
    const sim::OdeResult formal_run = sim::simulate_ode(formal, ode);
    const sim::OdeResult dsd_run = sim::simulate_ode(compiled.network, ode);
    const SpeciesId cf = *formal.find_species("C");
    const SpeciesId cd = *compiled.network.find_species("C");
    return std::abs(dsd_run.trajectory.final_value(cd) -
                    formal_run.trajectory.final_value(cf));
  };
  const double rich = error_with_fuel(200.0);
  const double poor = error_with_fuel(3.0);
  EXPECT_LT(rich, poor);
  EXPECT_LT(rich, 0.02);
}

TEST(DsdEquivalence, FuelsDeplete) {
  const ReactionNetwork formal = cascade();
  DsdOptions options;
  options.fuel_initial = 50.0;
  options.q_max = 2000.0;
  const DsdCompilation compiled = compile_to_dsd(formal, options);
  sim::OdeOptions ode;
  ode.t_end = 6.0;
  const sim::OdeResult run = sim::simulate_ode(compiled.network, ode);
  bool some_fuel_consumed = false;
  for (const SpeciesId fuel : compiled.fuels) {
    const double remaining = run.trajectory.final_value(fuel);
    EXPECT_LE(remaining, options.fuel_initial + 1e-9);
    if (remaining < options.fuel_initial - 0.1) some_fuel_consumed = true;
  }
  EXPECT_TRUE(some_fuel_consumed);
}

}  // namespace
}  // namespace mrsc::dna
