#include "dsp/counter.hpp"

#include <gtest/gtest.h>

#include "analysis/harness.hpp"
#include "logic/netlist.hpp"

namespace mrsc::dsp {
namespace {

using core::ReactionNetwork;

analysis::ClockedRunOptions options_for(const CounterSpec& spec,
                                        const ReactionNetwork& net,
                                        std::size_t increments) {
  analysis::ClockedRunOptions options;
  options.ode.t_end =
      analysis::suggest_t_end(spec.clock, net.rate_policy(), increments);
  return options;
}

// Golden model: the gate-level counter netlist clocked the same number of
// times.
std::vector<std::uint64_t> golden_counts(std::size_t bits,
                                         std::uint64_t initial,
                                         std::size_t increments) {
  const logic::Netlist netlist = logic::make_counter_netlist(bits, initial);
  logic::Simulation sim(netlist);
  const logic::NetId enable = *netlist.find("enable");
  std::vector<std::uint64_t> values;
  for (std::size_t i = 0; i < increments; ++i) {
    sim.set_input(enable, true);
    sim.evaluate();
    sim.clock_edge();
    sim.evaluate();
    values.push_back(sim.output_word());
  }
  return values;
}

class CounterBitsTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CounterBitsTest, MatchesGateLevelGoldenModel) {
  ReactionNetwork net;
  CounterSpec spec;
  spec.bits = GetParam();
  const CounterHandles handles = build_counter(net, spec);
  const std::size_t increments = (std::size_t{1} << spec.bits) + 3;  // wraps
  const auto result = analysis::run_counter(
      net, handles, increments, options_for(spec, net, increments));
  const auto golden = golden_counts(spec.bits, 0, increments);
  ASSERT_EQ(result.values.size(), golden.size());
  for (std::size_t i = 0; i < increments; ++i) {
    EXPECT_EQ(result.values[i], golden[i]) << "cycle " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, CounterBitsTest,
                         ::testing::Values(1u, 2u, 3u));

TEST(Counter, InitialValueRespected) {
  ReactionNetwork net;
  CounterSpec spec;
  spec.bits = 3;
  spec.initial_value = 5;
  const CounterHandles handles = build_counter(net, spec);
  const auto result =
      analysis::run_counter(net, handles, 5, options_for(spec, net, 5));
  EXPECT_EQ(result.values[0], 6u);
  EXPECT_EQ(result.values[1], 7u);
  EXPECT_EQ(result.values[2], 0u);  // wrap
  EXPECT_EQ(result.values[3], 1u);
}

TEST(Counter, DecodeThresholdsRails) {
  ReactionNetwork net;
  CounterSpec spec;
  spec.bits = 2;
  const CounterHandles handles = build_counter(net, spec);
  std::vector<double> state(net.species_count(), 0.0);
  state[handles.one_rail[0].index()] = 0.9;
  state[handles.zero_rail[0].index()] = 0.1;
  state[handles.one_rail[1].index()] = 0.2;
  state[handles.zero_rail[1].index()] = 0.8;
  EXPECT_EQ(decode_counter(handles, state), 1u);
}

TEST(Counter, RailsStayComplementary) {
  // After many cycles the dual-rail totals must remain ~1 per bit.
  ReactionNetwork net;
  CounterSpec spec;
  spec.bits = 3;
  const CounterHandles handles = build_counter(net, spec);
  const std::size_t increments = 12;
  const auto result = analysis::run_counter(
      net, handles, increments, options_for(spec, net, increments));
  const auto final_state = result.ode.trajectory.final_state();
  for (std::size_t bit = 0; bit < spec.bits; ++bit) {
    const double total = final_state[handles.zero_rail[bit].index()] +
                         final_state[handles.one_rail[bit].index()];
    // Some quantity is transiently in the primed masters right at the end;
    // totals must stay near 1.
    EXPECT_NEAR(total, 1.0, 0.05) << "bit " << bit;
  }
}

TEST(Counter, RobustAcrossRateRatios) {
  for (const double ratio : {200.0, 5000.0}) {
    ReactionNetwork net;
    CounterSpec spec;
    spec.bits = 2;
    const CounterHandles handles = build_counter(net, spec);
    net.set_rate_policy(core::RatePolicy{1.0, ratio});
    const auto result =
        analysis::run_counter(net, handles, 6, options_for(spec, net, 6));
    const auto golden = golden_counts(2, 0, 6);
    EXPECT_EQ(result.values, golden) << "ratio " << ratio;
  }
}

TEST(Counter, InvalidSpecsThrow) {
  ReactionNetwork net;
  CounterSpec zero_bits;
  zero_bits.bits = 0;
  EXPECT_THROW((void)build_counter(net, zero_bits), std::invalid_argument);
  CounterSpec bad_init;
  bad_init.bits = 2;
  bad_init.initial_value = 4;
  EXPECT_THROW((void)build_counter(net, bad_init), std::invalid_argument);
}

}  // namespace
}  // namespace mrsc::dsp
