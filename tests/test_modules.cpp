#include "modules/combinational.hpp"

#include <gtest/gtest.h>

#include "core/network.hpp"
#include "sim/ode.hpp"

namespace mrsc::modules {
namespace {

using core::ReactionNetwork;
using core::SpeciesId;

// Runs a network of fast-only modules to (near) completion and returns the
// final state.
std::vector<double> settle(const ReactionNetwork& net, double t_end = 5.0) {
  sim::OdeOptions options;
  options.t_end = t_end;
  const sim::OdeResult result = sim::simulate_ode(net, options);
  return {result.trajectory.final_state().begin(),
          result.trajectory.final_state().end()};
}

TEST(Modules, TransferMovesEverything) {
  ReactionNetwork net;
  const SpeciesId x = net.add_species("X", 2.5);
  const SpeciesId y = net.add_species("Y");
  transfer(net, x, y);
  const auto state = settle(net);
  EXPECT_NEAR(state[x.index()], 0.0, 1e-3);
  EXPECT_NEAR(state[y.index()], 2.5, 1e-3);
}

TEST(Modules, TransferWithCatalystOnlyRunsWhenCatalystPresent) {
  ReactionNetwork net;
  const SpeciesId x = net.add_species("X", 1.0);
  const SpeciesId y = net.add_species("Y");
  const SpeciesId cat = net.add_species("C", 0.0);
  EmitOptions options;
  options.catalyst = cat;
  transfer(net, x, y, options);
  // Catalyst absent: nothing happens.
  auto state = settle(net, 1.0);
  EXPECT_NEAR(state[x.index()], 1.0, 1e-9);
  // Catalyst present: transfer completes, catalyst conserved.
  net.set_initial(cat, 1.0);
  state = settle(net);
  EXPECT_NEAR(state[y.index()], 1.0, 1e-3);
  EXPECT_NEAR(state[cat.index()], 1.0, 1e-9);
}

TEST(Modules, DuplicateFansOut) {
  ReactionNetwork net;
  const SpeciesId x = net.add_species("X", 1.5);
  const SpeciesId a = net.add_species("A");
  const SpeciesId b = net.add_species("B");
  const SpeciesId c = net.add_species("C");
  const std::vector<SpeciesId> outs = {a, b, c};
  duplicate(net, x, outs);
  const auto state = settle(net);
  EXPECT_NEAR(state[a.index()], 1.5, 1e-3);
  EXPECT_NEAR(state[b.index()], 1.5, 1e-3);
  EXPECT_NEAR(state[c.index()], 1.5, 1e-3);
}

TEST(Modules, DuplicateNeedsOutputs) {
  ReactionNetwork net;
  const SpeciesId x = net.add_species("X");
  EXPECT_THROW(duplicate(net, x, {}), std::invalid_argument);
}

TEST(Modules, AddCombines) {
  ReactionNetwork net;
  const SpeciesId a = net.add_species("A", 1.25);
  const SpeciesId b = net.add_species("B", 0.5);
  const SpeciesId z = net.add_species("Z");
  add_into(net, a, b, z);
  const auto state = settle(net);
  EXPECT_NEAR(state[z.index()], 1.75, 1e-3);
}

TEST(Modules, ScaleByInteger) {
  ReactionNetwork net;
  const SpeciesId x = net.add_species("X", 0.75);
  const SpeciesId y = net.add_species("Y");
  scale_by_integer(net, x, y, 3);
  const auto state = settle(net);
  EXPECT_NEAR(state[y.index()], 2.25, 1e-3);
}

TEST(Modules, ScaleFactorZeroThrows) {
  ReactionNetwork net;
  const SpeciesId x = net.add_species("X");
  const SpeciesId y = net.add_species("Y");
  EXPECT_THROW(scale_by_integer(net, x, y, 0), std::invalid_argument);
}

TEST(Modules, HalveDividesByTwo) {
  ReactionNetwork net;
  const SpeciesId x = net.add_species("X", 2.0);
  const SpeciesId y = net.add_species("Y");
  halve(net, x, y);
  // The quadratic tail decays slowly; give it time.
  const auto state = settle(net, 200.0);
  EXPECT_NEAR(state[y.index()], 1.0, 5e-3);
}

// Property sweep: y = x * num / 2^halvings for several coefficients.
struct DyadicCase {
  double input;
  std::uint32_t numerator;
  std::uint32_t halvings;
};

class DyadicTest : public ::testing::TestWithParam<DyadicCase> {};

TEST_P(DyadicTest, ComputesDyadicScaling) {
  const DyadicCase& c = GetParam();
  ReactionNetwork net;
  const SpeciesId x = net.add_species("X", c.input);
  const SpeciesId y = net.add_species("Y");
  scale_dyadic(net, x, y, c.numerator, c.halvings, "sc");
  const auto state = settle(net, 400.0);
  const double expected =
      c.input * c.numerator / static_cast<double>(1u << c.halvings);
  EXPECT_NEAR(state[y.index()], expected, 0.01 * expected + 5e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Coefficients, DyadicTest,
    ::testing::Values(DyadicCase{2.0, 1, 1},    // x/2
                      DyadicCase{2.0, 3, 2},    // 3x/4
                      DyadicCase{1.0, 5, 0},    // 5x
                      DyadicCase{4.0, 1, 2},    // x/4
                      DyadicCase{1.0, 1, 3},    // x/8
                      DyadicCase{0.5, 7, 3}));  // 7x/8

TEST(Modules, MinTakesSmaller) {
  ReactionNetwork net;
  const SpeciesId a = net.add_species("A", 2.0);
  const SpeciesId b = net.add_species("B", 0.75);
  const SpeciesId m = net.add_species("M");
  min_into(net, a, b, m);
  const auto state = settle(net, 100.0);
  EXPECT_NEAR(state[m.index()], 0.75, 5e-3);
  EXPECT_NEAR(state[a.index()], 1.25, 5e-3);  // leftover |a-b|
  EXPECT_NEAR(state[b.index()], 0.0, 5e-3);
}

TEST(Modules, AnnihilateLeavesExcess) {
  ReactionNetwork net;
  const SpeciesId a = net.add_species("A", 1.0);
  const SpeciesId b = net.add_species("B", 2.5);
  annihilate(net, a, b);
  const auto state = settle(net, 100.0);
  EXPECT_NEAR(state[a.index()], 0.0, 5e-3);
  EXPECT_NEAR(state[b.index()], 1.5, 5e-3);
}

TEST(Modules, SubtractSaturatingPositive) {
  ReactionNetwork net;
  const SpeciesId x = net.add_species("X", 2.0);
  const SpeciesId y = net.add_species("Y", 0.5);
  const SpeciesId d = net.add_species("D");
  subtract_saturating(net, x, y, d);
  const auto state = settle(net, 100.0);
  EXPECT_NEAR(state[d.index()], 1.5, 5e-3);
}

TEST(Modules, SubtractSaturatingClampsAtZero) {
  ReactionNetwork net;
  const SpeciesId x = net.add_species("X", 0.5);
  const SpeciesId y = net.add_species("Y", 2.0);
  const SpeciesId d = net.add_species("D");
  subtract_saturating(net, x, y, d);
  const auto state = settle(net, 100.0);
  EXPECT_NEAR(state[d.index()], 0.0, 5e-3);
}

TEST(Modules, LabelsCarryPrefix) {
  ReactionNetwork net;
  const SpeciesId x = net.add_species("X");
  const SpeciesId y = net.add_species("Y");
  EmitOptions options;
  options.label = "ma";
  transfer(net, x, y, options);
  EXPECT_EQ(net.reaction(core::ReactionId{0}).label(), "ma.transfer");
}

TEST(Modules, ComposedPipelineComputesAffineExpression) {
  // z = (a + b) / 2 + 3 c, all modules chained.
  ReactionNetwork net;
  const SpeciesId a = net.add_species("A", 1.0);
  const SpeciesId b = net.add_species("B", 2.0);
  const SpeciesId c = net.add_species("C", 0.5);
  const SpeciesId sum = net.add_species("sum");
  const SpeciesId half = net.add_species("half");
  const SpeciesId scaled = net.add_species("scaled");
  const SpeciesId z = net.add_species("Z");
  add_into(net, a, b, sum);
  halve(net, sum, half);
  scale_by_integer(net, c, scaled, 3);
  add_into(net, half, scaled, z);
  const auto state = settle(net, 400.0);
  EXPECT_NEAR(state[z.index()], 3.0, 0.02);
}

}  // namespace
}  // namespace mrsc::modules
