#include "util/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace mrsc::util {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Matrix, FillAndIdentity) {
  Matrix m(3, 3, 9.0);
  m.set_identity();
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(m(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, IdentityRequiresSquare) {
  Matrix m(2, 3);
  EXPECT_THROW(m.set_identity(), std::invalid_argument);
}

TEST(Matrix, MultiplyVector) {
  Matrix m(2, 3);
  // [1 2 3; 4 5 6] * [1, 0, -1] = [-2, -2]
  m(0, 0) = 1; m(0, 1) = 2; m(0, 2) = 3;
  m(1, 0) = 4; m(1, 1) = 5; m(1, 2) = 6;
  const std::vector<double> v = {1.0, 0.0, -1.0};
  const auto out = m.multiply(v);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], -2.0);
  EXPECT_DOUBLE_EQ(out[1], -2.0);
}

TEST(Matrix, MultiplyDimensionMismatchThrows) {
  Matrix m(2, 3);
  const std::vector<double> v = {1.0, 2.0};
  EXPECT_THROW((void)m.multiply(v), std::invalid_argument);
}

TEST(Matrix, FrobeniusNorm) {
  Matrix m(1, 2);
  m(0, 0) = 3.0;
  m(0, 1) = 4.0;
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
}

TEST(LuFactorization, SolvesKnownSystem) {
  Matrix a(2, 2);
  a(0, 0) = 2.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 3.0;
  const LuFactorization lu(a);
  const std::vector<double> b = {5.0, 10.0};
  const auto x = lu.solve(b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LuFactorization, Determinant) {
  Matrix a(2, 2);
  a(0, 0) = 2.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 3.0;
  EXPECT_NEAR(LuFactorization(a).determinant(), 5.0, 1e-12);
}

TEST(LuFactorization, SingularMatrixThrows) {
  Matrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  a(1, 0) = 2.0; a(1, 1) = 4.0;
  EXPECT_THROW(LuFactorization{a}, std::runtime_error);
}

TEST(LuFactorization, NonSquareThrows) {
  Matrix a(2, 3);
  EXPECT_THROW(LuFactorization{a}, std::invalid_argument);
}

TEST(LuFactorization, RequiresPivoting) {
  // Zero on the initial diagonal forces a row swap.
  Matrix a(2, 2);
  a(0, 0) = 0.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 0.0;
  const LuFactorization lu(a);
  const auto x = lu.solve(std::vector<double>{3.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

// Property: for random well-conditioned systems, A * solve(A, b) == b.
class LuRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(LuRandomTest, SolveThenMultiplyRoundTrips) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 3 + static_cast<std::size_t>(GetParam()) % 8;
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
    a(r, r) += static_cast<double>(n);  // diagonally dominant
  }
  std::vector<double> b(n);
  for (double& v : b) v = rng.uniform(-10.0, 10.0);

  const LuFactorization lu(a);
  const auto x = lu.solve(b);
  const auto back = a.multiply(x);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(back[i], b[i], 1e-9) << "row " << i << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LuRandomTest, ::testing::Range(1, 13));

}  // namespace
}  // namespace mrsc::util
