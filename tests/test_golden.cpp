// Golden-trace regression: recompute the canonical example circuits and
// compare cycle-by-cycle against the checked-in traces in tests/golden/.
// Regenerate after an intentional behaviour change with:
//
//   mrsc_verify --regen-golden tests/golden
//
// Each trace is replayed under BOTH simulation engines (legacy and
// compiled): both must match the checked-in file, and their recomputed rows
// must be byte-for-byte identical to each other — the engines share one
// determinism contract (docs/ENGINE.md), so the goldens double as an
// end-to-end equivalence fixture on real circuits.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "verify/golden.hpp"

namespace mrsc::verify {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(MRSC_GOLDEN_DIR) + "/" + name + ".golden";
}

class GoldenRegression : public ::testing::Test {
 public:
  static void SetUpTestSuite() {
    compiled_ =
        new auto(compute_reference_traces(sim::EngineKind::kCompiled));
    legacy_ = new auto(compute_reference_traces(sim::EngineKind::kLegacy));
  }
  static void TearDownTestSuite() {
    delete compiled_;
    compiled_ = nullptr;
    delete legacy_;
    legacy_ = nullptr;
  }

  static const GoldenTrace& recomputed(const std::vector<GoldenTrace>& traces,
                                       const std::string& name) {
    for (const GoldenTrace& trace : traces) {
      if (trace.name == name) return trace;
    }
    throw std::runtime_error("no recomputed trace named " + name);
  }

  static std::vector<GoldenTrace>* compiled_;
  static std::vector<GoldenTrace>* legacy_;
};

std::vector<GoldenTrace>* GoldenRegression::compiled_ = nullptr;
std::vector<GoldenTrace>* GoldenRegression::legacy_ = nullptr;

void expect_matches_golden(const std::string& name) {
  const GoldenTrace golden = load_golden(golden_path(name));
  const GoldenTrace& compiled =
      GoldenRegression::recomputed(*GoldenRegression::compiled_, name);
  const GoldenTrace& legacy =
      GoldenRegression::recomputed(*GoldenRegression::legacy_, name);

  // Both engines must reproduce the checked-in trace...
  for (const GoldenTrace* fresh : {&compiled, &legacy}) {
    EXPECT_EQ(golden.columns, fresh->columns);
    EXPECT_DOUBLE_EQ(golden.tolerance, fresh->tolerance);
    const auto mismatch = compare_golden(golden, fresh->rows);
    EXPECT_FALSE(mismatch.has_value()) << *mismatch;
  }

  // ...and each other, exactly (no tolerance): the compiled engine is a
  // bitwise-identical reformulation of the legacy one.
  ASSERT_EQ(compiled.rows.size(), legacy.rows.size());
  for (std::size_t r = 0; r < compiled.rows.size(); ++r) {
    ASSERT_EQ(compiled.rows[r].size(), legacy.rows[r].size());
    for (std::size_t c = 0; c < compiled.rows[r].size(); ++c) {
      EXPECT_EQ(compiled.rows[r][c], legacy.rows[r][c])
          << name << " row " << r << " column " << c
          << ": compiled and legacy engines diverged";
    }
  }
}

TEST_F(GoldenRegression, Counter) { expect_matches_golden("counter"); }

TEST_F(GoldenRegression, MovingAverage) {
  expect_matches_golden("moving_average");
}

TEST_F(GoldenRegression, SequenceDetector) {
  expect_matches_golden("sequence_detector");
}

TEST(GoldenFormat, SerializeParseRoundTrip) {
  GoldenTrace trace;
  trace.name = "demo";
  trace.tolerance = 1e-5;
  trace.columns = {"x", "y"};
  trace.rows = {{0.1, -2.0}, {1.0 / 3.0, 1e-300}};
  const GoldenTrace back = parse_golden(serialize_golden(trace));
  EXPECT_EQ(back.name, trace.name);
  EXPECT_DOUBLE_EQ(back.tolerance, trace.tolerance);
  EXPECT_EQ(back.columns, trace.columns);
  ASSERT_EQ(back.rows.size(), trace.rows.size());
  for (std::size_t r = 0; r < trace.rows.size(); ++r) {
    ASSERT_EQ(back.rows[r].size(), trace.rows[r].size());
    for (std::size_t c = 0; c < trace.rows[r].size(); ++c) {
      // %.17g round-trips doubles exactly.
      EXPECT_EQ(back.rows[r][c], trace.rows[r][c]);
    }
  }
}

TEST(GoldenFormat, MalformedInputNamesTheLine) {
  try {
    (void)parse_golden("golden v1\nname demo\nbogus line\n");
    FAIL() << "expected parse_golden to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(GoldenFormat, WrongVersionRejected) {
  EXPECT_THROW((void)parse_golden("golden v2\n"), std::runtime_error);
}

TEST(GoldenFormat, CompareFlagsValueOutsideTolerance) {
  GoldenTrace golden;
  golden.name = "demo";
  golden.tolerance = 0.01;
  golden.columns = {"v"};
  golden.rows = {{1.0}, {2.0}};
  EXPECT_FALSE(compare_golden(golden, {{1.005}, {2.0}}).has_value());
  const auto mismatch = compare_golden(golden, {{1.0}, {2.5}});
  ASSERT_TRUE(mismatch.has_value());
  EXPECT_NE(mismatch->find("row 1"), std::string::npos) << *mismatch;
}

TEST(GoldenFormat, CompareFlagsRowCountMismatch) {
  GoldenTrace golden;
  golden.name = "demo";
  golden.columns = {"v"};
  golden.rows = {{1.0}};
  EXPECT_TRUE(compare_golden(golden, {}).has_value());
}

}  // namespace
}  // namespace mrsc::verify
