#include "sync/clock.hpp"

#include <gtest/gtest.h>

#include "analysis/metrics.hpp"
#include "sim/observer.hpp"
#include "sim/ode.hpp"

namespace mrsc::sync {
namespace {

using core::ReactionNetwork;

struct ClockRun {
  sim::OdeResult ode;
  std::vector<double> rising_r, rising_g, rising_b;
};

ClockRun run_clock(const ClockSpec& spec, double t_end,
                   const core::RatePolicy& policy = {}) {
  ReactionNetwork net;
  net.set_rate_policy(policy);
  const ClockHandles handles = build_clock(net, spec);
  sim::EdgeDetector edge_r(handles.phase_r, 0.2 * spec.token,
                           0.6 * spec.token);
  sim::EdgeDetector edge_g(handles.phase_g, 0.2 * spec.token,
                           0.6 * spec.token);
  sim::EdgeDetector edge_b(handles.phase_b, 0.2 * spec.token,
                           0.6 * spec.token);
  sim::Observer* observers[] = {&edge_r, &edge_g, &edge_b};
  sim::OdeOptions options;
  options.t_end = t_end;
  options.record_interval = 0.1;
  ClockRun run;
  run.ode = sim::simulate_ode(net, options, net.initial_state(),
                              std::span<sim::Observer* const>(observers, 3));
  run.rising_r = edge_r.rising_edges();
  run.rising_g = edge_g.rising_edges();
  run.rising_b = edge_b.rising_edges();
  return run;
}

double mean_period(const std::vector<double>& edges) {
  if (edges.size() < 2) return 0.0;
  return (edges.back() - edges.front()) /
         static_cast<double>(edges.size() - 1);
}

TEST(Clock, SustainsOscillation) {
  const ClockRun run = run_clock({}, 400.0);
  // ~13 periods in 400 time units at stretch 4; require several full cycles
  // on every phase.
  EXPECT_GE(run.rising_r.size(), 8u);
  EXPECT_GE(run.rising_g.size(), 8u);
  EXPECT_GE(run.rising_b.size(), 8u);
}

TEST(Clock, PeriodIsRegular) {
  const ClockRun run = run_clock({}, 400.0);
  std::vector<double> periods;
  for (std::size_t i = 1; i < run.rising_g.size(); ++i) {
    periods.push_back(run.rising_g[i] - run.rising_g[i - 1]);
  }
  ASSERT_GE(periods.size(), 5u);
  const double mean = analysis::mean(periods);
  // Skip the first period (start-up transient) when judging regularity.
  for (std::size_t i = 1; i < periods.size(); ++i) {
    EXPECT_NEAR(periods[i], mean, 0.1 * mean) << "period " << i;
  }
}

TEST(Clock, PhasesAreMutuallyExclusive) {
  ReactionNetwork net;
  const ClockSpec spec;
  const ClockHandles handles = build_clock(net, spec);
  sim::OdeOptions options;
  options.t_end = 300.0;
  options.record_interval = 0.1;
  const sim::OdeResult result = sim::simulate_ode(net, options);
  // At most one phase is ever above 60% of the token; the second-largest
  // stays below 50% (they cross during transfers).
  for (std::size_t k = 0; k < result.trajectory.sample_count(); ++k) {
    double values[3] = {result.trajectory.value(k, handles.phase_r),
                        result.trajectory.value(k, handles.phase_g),
                        result.trajectory.value(k, handles.phase_b)};
    std::sort(std::begin(values), std::end(values));
    if (values[2] > 0.6) {
      EXPECT_LT(values[1], 0.5)
          << "t=" << result.trajectory.time(k);
    }
  }
}

TEST(Clock, TokenIsConserved) {
  ReactionNetwork net;
  const ClockSpec spec;
  const ClockHandles handles = build_clock(net, spec);
  sim::OdeOptions options;
  options.t_end = 200.0;
  options.record_interval = 1.0;
  const sim::OdeResult result = sim::simulate_ode(net, options);
  const auto dimer = [&](const char* name) {
    return *net.find_species(name);
  };
  for (std::size_t k = 0; k < result.trajectory.sample_count(); ++k) {
    // Token + 2x dimerized token is conserved.
    const double total =
        result.trajectory.value(k, handles.phase_r) +
        result.trajectory.value(k, handles.phase_g) +
        result.trajectory.value(k, handles.phase_b) +
        2.0 * (result.trajectory.value(k, dimer("clk_I_r2g")) +
               result.trajectory.value(k, dimer("clk_I_g2b")) +
               result.trajectory.value(k, dimer("clk_I_b2r")));
    EXPECT_NEAR(total, spec.token, 1e-3) << "t=" << result.trajectory.time(k);
  }
}

TEST(Clock, StretchLengthensPeriod) {
  ClockSpec fast_spec;
  fast_spec.phase_stretch = 2.0;
  ClockSpec slow_spec;
  slow_spec.phase_stretch = 8.0;
  const double period_fast =
      mean_period(run_clock(fast_spec, 300.0).rising_g);
  const double period_slow =
      mean_period(run_clock(slow_spec, 900.0).rising_g);
  ASSERT_GT(period_fast, 0.0);
  ASSERT_GT(period_slow, 0.0);
  // Sub-linear in the stretch: the gate build-up and seeding scale with it,
  // but the feedback-driven completion of each transfer does not.
  EXPECT_GT(period_slow, 1.5 * period_fast);
}

TEST(Clock, PeriodScalesInverselyWithSlowRate) {
  core::RatePolicy doubled;
  doubled.k_slow = 2.0;
  doubled.k_fast = 2000.0;
  const double base = mean_period(run_clock({}, 300.0).rising_g);
  const double scaled = mean_period(run_clock({}, 150.0, doubled).rising_g);
  ASSERT_GT(base, 0.0);
  ASSERT_GT(scaled, 0.0);
  EXPECT_NEAR(scaled, base / 2.0, 0.15 * base);
}

TEST(Clock, OscillatesAcrossRateRatios) {
  for (const double ratio : {100.0, 1000.0, 10000.0}) {
    core::RatePolicy policy;
    policy.k_fast = ratio;
    const ClockRun run = run_clock({}, 300.0, policy);
    EXPECT_GE(run.rising_g.size(), 6u) << "ratio " << ratio;
  }
}

TEST(Clock, PhaseOrderIsRGB) {
  const ClockRun run = run_clock({}, 200.0);
  // After startup, each G rising edge is followed by a B rising edge before
  // the next R rising edge.
  ASSERT_GE(run.rising_g.size(), 3u);
  ASSERT_GE(run.rising_b.size(), 3u);
  ASSERT_GE(run.rising_r.size(), 3u);
  EXPECT_LT(run.rising_g[0], run.rising_b[0]);
  EXPECT_LT(run.rising_b[0], run.rising_r[0]);
  EXPECT_LT(run.rising_r[0], run.rising_g[1]);
}

TEST(Clock, WithoutFeedbackOscillationCollapses) {
  // Ablation: the positive-feedback dimers are what turn the token loop into
  // a relaxation oscillator. Without them the system drifts into a mixed
  // fixed point (all phases partially occupied, all indicators suppressed)
  // instead of producing a limit cycle.
  ClockSpec spec;
  spec.feedback = false;
  const ClockRun run = run_clock(spec, 600.0);
  EXPECT_LE(run.rising_g.size(), 2u);
  const auto final_state = run.ode.trajectory.final_state();
  // No phase dominates at the end.
  int high_phases = 0;
  for (std::size_t i = 0; i < final_state.size(); ++i) {
    if (final_state[i] > 0.8) ++high_phases;
  }
  EXPECT_EQ(high_phases, 0);
}

TEST(Clock, TokenAmountSetsAmplitude) {
  ReactionNetwork net;
  ClockSpec spec;
  spec.token = 2.0;
  const ClockHandles handles = build_clock(net, spec);
  sim::OdeOptions options;
  options.t_end = 200.0;
  options.record_interval = 0.2;
  const sim::OdeResult result = sim::simulate_ode(net, options);
  EXPECT_GT(
      result.trajectory.max_in_window(handles.phase_g, 50.0, 200.0), 1.8);
}

TEST(Clock, InvalidSpecsThrow) {
  ReactionNetwork net;
  ClockSpec bad_token;
  bad_token.token = 0.0;
  EXPECT_THROW((void)build_clock(net, bad_token), std::invalid_argument);
  ClockSpec bad_stretch;
  bad_stretch.phase_stretch = 0.5;
  EXPECT_THROW((void)build_clock(net, bad_stretch), std::invalid_argument);
}

}  // namespace
}  // namespace mrsc::sync
