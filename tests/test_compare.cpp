#include "modules/compare.hpp"

#include <gtest/gtest.h>

#include "sim/ode.hpp"
#include "sim/ssa.hpp"

namespace mrsc::modules {
namespace {

using core::ReactionNetwork;

struct CompareCase {
  double a;
  double b;
};

class ComparatorSsaTest : public ::testing::TestWithParam<CompareCase> {};

TEST_P(ComparatorSsaTest, EmitsCorrectTokenOnCounts) {
  const auto [a, b] = GetParam();
  ReactionNetwork net;
  net.set_rate_policy(core::RatePolicy{1.0, 10000.0});
  const ComparatorHandles handles = build_comparator(net, "cmp");
  net.set_initial(handles.a, a);
  net.set_initial(handles.b, b);

  sim::SsaOptions options;
  options.t_end = 500.0;
  options.omega = 1.0;
  options.seed = 21;
  const sim::SsaResult result = simulate_ssa(net, options);
  const std::int64_t gt = result.final_counts[handles.greater.index()];
  const std::int64_t le = result.final_counts[handles.lesser.index()];
  EXPECT_EQ(gt + le, 1) << "exactly one decision token";
  if (a > b) {
    EXPECT_EQ(gt, 1) << "a=" << a << " b=" << b;
    // Survivor retains the difference.
    EXPECT_EQ(result.final_counts[handles.a.index()],
              static_cast<std::int64_t>(a - b));
  } else if (a < b) {
    EXPECT_EQ(le, 1) << "a=" << a << " b=" << b;
    EXPECT_EQ(result.final_counts[handles.b.index()],
              static_cast<std::int64_t>(b - a));
  }
}

INSTANTIATE_TEST_SUITE_P(Pairs, ComparatorSsaTest,
                         ::testing::Values(CompareCase{5, 2},
                                           CompareCase{2, 5},
                                           CompareCase{1, 8},
                                           CompareCase{8, 1},
                                           CompareCase{3, 4},
                                           CompareCase{10, 9}));

TEST(Comparator, TieEmitsExactlyOneToken) {
  ReactionNetwork net;
  net.set_rate_policy(core::RatePolicy{1.0, 10000.0});
  const ComparatorHandles handles = build_comparator(net, "cmp");
  net.set_initial(handles.a, 4.0);
  net.set_initial(handles.b, 4.0);
  sim::SsaOptions options;
  options.t_end = 500.0;
  options.omega = 1.0;
  options.seed = 5;
  const sim::SsaResult result = simulate_ssa(net, options);
  EXPECT_EQ(result.final_counts[handles.greater.index()] +
                result.final_counts[handles.lesser.index()],
            1);
}

TEST(Comparator, OdeLimitConvergesToRightToken) {
  ReactionNetwork net;
  const ComparatorHandles handles = build_comparator(net, "cmp");
  net.set_initial(handles.a, 2.0);
  net.set_initial(handles.b, 0.75);
  sim::OdeOptions options;
  options.t_end = 100.0;
  const sim::OdeResult result = sim::simulate_ode(net, options);
  EXPECT_GT(result.trajectory.final_value(handles.greater), 0.9);
  EXPECT_LT(result.trajectory.final_value(handles.lesser), 0.1);
  EXPECT_NEAR(result.trajectory.final_value(handles.a), 1.25, 0.05);
}

TEST(Comparator, ZeroOperandDecidesImmediately) {
  ReactionNetwork net;
  net.set_rate_policy(core::RatePolicy{1.0, 10000.0});
  const ComparatorHandles handles = build_comparator(net, "cmp");
  net.set_initial(handles.a, 3.0);
  net.set_initial(handles.b, 0.0);
  sim::SsaOptions options;
  options.t_end = 200.0;
  options.omega = 1.0;
  options.seed = 9;
  const sim::SsaResult result = simulate_ssa(net, options);
  EXPECT_EQ(result.final_counts[handles.greater.index()], 1);
  EXPECT_EQ(result.final_counts[handles.a.index()], 3);
}

}  // namespace
}  // namespace mrsc::modules
