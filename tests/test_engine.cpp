// Differential harness for the compiled simulation engine.
//
// The compiled engine (src/sim/engine/) claims *bitwise* identity with the
// legacy MassActionSystem paths — same trajectories, same event counts, the
// same bits. This file is the proof obligation behind that claim:
//
//   * every built-in design, every SSA method, every sample: legacy ==
//     compiled exactly (times, values, events, final counts);
//   * fixed-step RK4 on every built-in design: exact;
//   * shared-CompiledSystem ensembles at 1 and 8 workers: bitwise equal to a
//     legacy serial ensemble, replicate by replicate;
//   * a 25-seed x 4-kind sweep through the engine_equivalence fuzz oracle
//     (the same oracle mrsc_verify runs on every generated case);
//   * dependency-graph properties: the compiled CSR graph equals the legacy
//     graph, contains an edge j->k exactly when j changes a reactant of k
//     (or j == k), and has no spurious edges between independent reactions;
//   * kernel classification and propensity/flux/rhs/jacobian bitwise checks
//     on handcrafted and fuzz-generated networks;
//   * the next-reaction stale-propensity skip, regressed against an in-test
//     reference NRM that always recomputes (identical RNG draw order).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/builder.hpp"
#include "core/network.hpp"
#include "runtime/ensemble.hpp"
#include "sim/engine/arena.hpp"
#include "sim/engine/compiled_system.hpp"
#include "sim/engine/engine.hpp"
#include "sim/mass_action.hpp"
#include "sim/ode.hpp"
#include "sim/ssa.hpp"
#include "tools/builtin_designs.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"
#include "verify/engine_equivalence.hpp"
#include "verify/generator.hpp"

namespace mrsc::sim {
namespace {

using core::NetworkBuilder;
using core::ReactionNetwork;
using core::SpeciesId;

const std::vector<std::string> kBuiltinDesigns = {
    "counter", "moving_average", "iir",    "first_difference",
    "delay",   "seqdet",         "cascade"};

ReactionNetwork builtin_network(const std::string& name) {
  tools::BuiltDesign design = tools::build_design(name, {});
  return *design.network;
}

void expect_trajectories_bitwise(const Trajectory& a, const Trajectory& b,
                                 const std::string& context) {
  ASSERT_EQ(a.sample_count(), b.sample_count()) << context;
  ASSERT_EQ(a.species_count(), b.species_count()) << context;
  for (std::size_t k = 0; k < a.sample_count(); ++k) {
    ASSERT_EQ(a.time(k), b.time(k)) << context << " sample " << k;
    const auto sa = a.state(k);
    const auto sb = b.state(k);
    for (std::size_t i = 0; i < sa.size(); ++i) {
      ASSERT_EQ(sa[i], sb[i])
          << context << " sample " << k << " species " << i;
    }
  }
}

void expect_ssa_results_bitwise(const SsaResult& a, const SsaResult& b,
                                const std::string& context) {
  EXPECT_EQ(a.events, b.events) << context;
  EXPECT_EQ(a.exhausted, b.exhausted) << context;
  EXPECT_EQ(a.hit_event_limit, b.hit_event_limit) << context;
  EXPECT_EQ(a.end_time, b.end_time) << context;
  ASSERT_EQ(a.final_counts, b.final_counts) << context;
  expect_trajectories_bitwise(a.trajectory, b.trajectory, context);
}

// ---------------------------------------------------------------------------
// Bitwise identity on every built-in design.

TEST(EngineEquivalence, BuiltinDesignsBitwiseSsa) {
  const std::vector<std::pair<SsaMethod, const char*>> methods = {
      {SsaMethod::kDirect, "direct"},
      {SsaMethod::kNextReaction, "nrm"},
      {SsaMethod::kTauLeaping, "tau"}};
  for (const std::string& name : kBuiltinDesigns) {
    const ReactionNetwork network = builtin_network(name);
    for (const auto& [method, method_name] : methods) {
      SsaOptions options;
      options.t_end = 0.5;
      options.omega = 150.0;
      options.seed = 7;
      options.tau = 0.01;
      options.record_interval = 0.05;
      options.max_events = 40'000;  // capped runs still compare exactly
      options.method = method;

      options.engine.kind = EngineKind::kLegacy;
      const SsaResult legacy = simulate_ssa(network, options);
      options.engine.kind = EngineKind::kCompiled;
      const SsaResult compiled = simulate_ssa(network, options);
      expect_ssa_results_bitwise(legacy, compiled,
                                 name + "/" + method_name);
    }
  }
}

TEST(EngineEquivalence, BuiltinDesignsBitwiseRk4) {
  for (const std::string& name : kBuiltinDesigns) {
    const ReactionNetwork network = builtin_network(name);
    OdeOptions options;
    options.method = OdeMethod::kRk4Fixed;
    options.t_end = 0.5;
    options.dt = 1e-3;
    options.record_interval = 0.05;

    options.engine.kind = EngineKind::kLegacy;
    const OdeResult legacy = simulate_ode(network, options);
    options.engine.kind = EngineKind::kCompiled;
    const OdeResult compiled = simulate_ode(network, options);

    EXPECT_EQ(legacy.steps_accepted, compiled.steps_accepted) << name;
    EXPECT_EQ(legacy.end_time, compiled.end_time) << name;
    expect_trajectories_bitwise(legacy.trajectory, compiled.trajectory,
                                name + "/rk4");
  }
}

// ---------------------------------------------------------------------------
// Shared CompiledSystem across an ensemble: bitwise independent of both the
// engine and the worker count.

TEST(EngineEquivalence, EnsembleSharedCompiledSystemBitwise) {
  const ReactionNetwork network = builtin_network("counter");
  SsaOptions ssa;
  ssa.t_end = 0.3;
  ssa.omega = 100.0;
  ssa.method = SsaMethod::kNextReaction;
  ssa.record_interval = 0.05;
  ssa.max_events = 40'000;

  auto run = [&](EngineKind kind, std::size_t threads) {
    SsaOptions options = ssa;
    options.engine.kind = kind;
    runtime::EnsembleOptions ensemble;
    ensemble.replicates = 8;
    ensemble.base_seed = 11;
    ensemble.batch.threads = threads;
    return runtime::run_ssa_ensemble(network, options, ensemble);
  };

  const runtime::EnsembleResult legacy = run(EngineKind::kLegacy, 1);
  const runtime::EnsembleResult serial = run(EngineKind::kCompiled, 1);
  const runtime::EnsembleResult parallel = run(EngineKind::kCompiled, 8);

  ASSERT_EQ(legacy.ok, legacy.replicates.size());
  for (const runtime::EnsembleResult* other : {&serial, &parallel}) {
    ASSERT_EQ(other->replicates.size(), legacy.replicates.size());
    for (std::size_t i = 0; i < legacy.replicates.size(); ++i) {
      const runtime::JobResult& ref = legacy.replicates[i];
      const runtime::JobResult& got = other->replicates[i];
      EXPECT_EQ(got.status, ref.status) << "replicate " << i;
      EXPECT_EQ(got.seed, ref.seed) << "replicate " << i;
      EXPECT_EQ(got.ssa_events, ref.ssa_events) << "replicate " << i;
      EXPECT_EQ(got.end_time, ref.end_time) << "replicate " << i;
      ASSERT_EQ(got.final_state.size(), ref.final_state.size());
      for (std::size_t s = 0; s < ref.final_state.size(); ++s) {
        EXPECT_EQ(got.final_state[s], ref.final_state[s])
            << "replicate " << i << " species " << s;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// The fuzz oracle, swept the way mrsc_verify sweeps it.

TEST(EngineEquivalence, FuzzSweepAllKinds) {
  const std::vector<verify::CaseKind> kinds = {
      verify::CaseKind::kRawNetwork, verify::CaseKind::kSyncCircuit,
      verify::CaseKind::kFsm, verify::CaseKind::kCounter};
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    for (const verify::CaseKind kind : kinds) {
      const verify::GeneratedCase c = verify::generate_case(kind, seed);
      verify::EngineEquivalenceOptions eq;
      eq.t_end = 1.0;
      eq.omega = 150.0;
      eq.max_events = 60'000;
      eq.seed = util::Rng::stream_seed(seed, 0xE6);
      const std::vector<verify::Violation> violations =
          verify::check_engine_equivalence(c.network(), eq);
      for (const verify::Violation& v : violations) {
        ADD_FAILURE() << "kind " << verify::to_string(kind) << " seed "
                      << seed << ": [" << v.oracle << "] " << v.detail;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Dependency-graph properties.

// Naive recomputation of the next-reaction dependency predicate: j -> k iff
// j == k or j changes the count of one of k's reactant species.
bool naive_edge(const CompiledSystem& sys, std::size_t j, std::size_t k) {
  if (j == k) return true;
  for (const std::uint32_t changed : sys.net_species(j)) {
    const auto reactants = sys.reactant_species(k);
    if (std::find(reactants.begin(), reactants.end(), changed) !=
        reactants.end()) {
      return true;
    }
  }
  return false;
}

void expect_dependency_graph_sound(const ReactionNetwork& network,
                                   const std::string& context) {
  const MassActionSystem legacy(network);
  const CompiledSystem compiled(legacy);
  ASSERT_EQ(compiled.reaction_count(), legacy.reaction_count()) << context;
  for (std::size_t j = 0; j < compiled.reaction_count(); ++j) {
    // CSR graph == legacy graph, element for element.
    const auto span = compiled.affected_reactions(j);
    const std::vector<std::uint32_t>& ref = legacy.affected_reactions(j);
    ASSERT_EQ(std::vector<std::uint32_t>(span.begin(), span.end()), ref)
        << context << " reaction " << j;
    // Edge set == the naive predicate: every reaction changing a reactant of
    // k is an edge into k, and nothing else is.
    for (std::size_t k = 0; k < compiled.reaction_count(); ++k) {
      const bool listed =
          std::find(span.begin(), span.end(), static_cast<std::uint32_t>(k)) !=
          span.end();
      EXPECT_EQ(listed, naive_edge(compiled, j, k))
          << context << " edge " << j << " -> " << k;
    }
    // The legacy and compiled pure-catalysis flags agree too.
    EXPECT_EQ(compiled.affects_own_reactants(j),
              legacy.affects_own_reactants(j))
        << context << " reaction " << j;
  }
}

TEST(DependencyGraph, MatchesLegacyAndNaivePredicateOnBuiltins) {
  for (const std::string& name : kBuiltinDesigns) {
    expect_dependency_graph_sound(builtin_network(name), name);
  }
}

TEST(DependencyGraph, MatchesLegacyAndNaivePredicateOnFuzzedNetworks) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const verify::GeneratedCase c =
        verify::generate_case(verify::CaseKind::kRawNetwork, seed);
    expect_dependency_graph_sound(c.network(),
                                  "raw seed " + std::to_string(seed));
  }
}

TEST(DependencyGraph, NoSpuriousEdgesBetweenIndependentReactions) {
  // A -> B and C -> D share no species at all: each reaction's dependency
  // list must be exactly its self-edge.
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.reaction("A -> B", 1.0);
  b.reaction("C -> D", 2.0);
  const CompiledSystem sys{net};
  ASSERT_EQ(sys.reaction_count(), 2u);
  const auto dep0 = sys.affected_reactions(0);
  const auto dep1 = sys.affected_reactions(1);
  EXPECT_EQ(std::vector<std::uint32_t>(dep0.begin(), dep0.end()),
            (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(std::vector<std::uint32_t>(dep1.begin(), dep1.end()),
            (std::vector<std::uint32_t>{1}));
}

TEST(DependencyGraph, CatalysisSetsAffectsOwnReactantsFalse) {
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.reaction("C -> C + A", 1.0);  // pure catalysis: C's count is unchanged
  b.reaction("A -> B", 1.0);      // consumes its own reactant
  const CompiledSystem sys{net};
  EXPECT_FALSE(sys.affects_own_reactants(0));
  EXPECT_TRUE(sys.affects_own_reactants(1));
  // The catalytic reaction still appears in the dependents of the reaction
  // reading A (it produces A), but A -> B does not feed back into C -> C + A.
  const auto dep0 = sys.affected_reactions(0);
  EXPECT_TRUE(std::find(dep0.begin(), dep0.end(), 1u) != dep0.end());
  const auto dep1 = sys.affected_reactions(1);
  EXPECT_TRUE(std::find(dep1.begin(), dep1.end(), 0u) == dep1.end());
}

// ---------------------------------------------------------------------------
// Kernel classification and pointwise bitwise evaluation.

TEST(CompiledSystem, KernelClassification) {
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.reaction("A -> B", 1.0);        // 0: unimolecular
  b.reaction("2 A -> B", 1.0);      // 1: dimer
  b.reaction("A + B -> C", 1.0);    // 2: bimolecular
  b.reaction("0 -> A", 1.0);        // 3: source -> generic
  b.reaction("C + A -> C + B", 1.0);  // 4: two distinct reactants -> bimol
  const SpeciesId a = *net.find_species("A");
  const SpeciesId bb = *net.find_species("B");
  const SpeciesId cc = *net.find_species("C");
  net.add({{a, 1}, {bb, 2}}, {{cc, 1}}, core::RateCategory::kCustom,
          1.0);  // 5: order 3 -> generic
  const CompiledSystem sys{net};
  ASSERT_EQ(sys.reaction_count(), 6u);
  EXPECT_EQ(sys.kernel(0), ReactionKernel::kUnimolecular);
  EXPECT_EQ(sys.kernel(1), ReactionKernel::kDimer);
  EXPECT_EQ(sys.kernel(2), ReactionKernel::kBimolecular);
  EXPECT_EQ(sys.kernel(3), ReactionKernel::kGeneric);
  EXPECT_EQ(sys.kernel(4), ReactionKernel::kBimolecular);
  EXPECT_EQ(sys.kernel(5), ReactionKernel::kGeneric);
  EXPECT_EQ(sys.order(0), 1u);
  EXPECT_EQ(sys.order(1), 2u);
  EXPECT_EQ(sys.order(5), 3u);
}

void expect_pointwise_bitwise(const ReactionNetwork& network,
                              std::uint64_t seed,
                              const std::string& context) {
  const MassActionSystem legacy(network);
  const CompiledSystem compiled(legacy);
  const std::size_t ns = legacy.species_count();
  const std::size_t m = legacy.reaction_count();
  util::Rng rng(seed);

  for (int trial = 0; trial < 5; ++trial) {
    // Random concentrations, including exact zeros (the early-out paths).
    std::vector<double> x(ns);
    for (double& v : x) {
      v = rng.uniform() < 0.25 ? 0.0 : rng.uniform(0.0, 3.0);
    }
    for (std::size_t j = 0; j < m; ++j) {
      EXPECT_EQ(compiled.flux(j, x), legacy.flux(j, x))
          << context << " flux reaction " << j;
    }
    std::vector<double> dxdt_legacy(ns), dxdt_compiled(ns);
    legacy.rhs(x, dxdt_legacy);
    compiled.rhs(x, dxdt_compiled);
    for (std::size_t i = 0; i < ns; ++i) {
      EXPECT_EQ(dxdt_compiled[i], dxdt_legacy[i])
          << context << " rhs species " << i;
    }
    util::Matrix jac_legacy, jac_compiled;
    legacy.jacobian(x, jac_legacy);
    compiled.jacobian(x, jac_compiled);
    ASSERT_EQ(jac_compiled.rows(), jac_legacy.rows());
    ASSERT_EQ(jac_compiled.cols(), jac_legacy.cols());
    for (std::size_t r = 0; r < jac_legacy.rows(); ++r) {
      for (std::size_t c = 0; c < jac_legacy.cols(); ++c) {
        EXPECT_EQ(jac_compiled(r, c), jac_legacy(r, c))
            << context << " jacobian (" << r << ", " << c << ")";
      }
    }

    // Random counts, including 0 and 1 (the dimer/bimolecular early-outs).
    std::vector<std::int64_t> n(ns);
    for (std::int64_t& v : n) {
      v = static_cast<std::int64_t>(rng.uniform_below(50));
      if (rng.uniform() < 0.3) v = static_cast<std::int64_t>(
          rng.uniform_below(2));
    }
    for (const double omega : {1.0, 200.0, 1e4}) {
      std::vector<double> scaled(m);
      compiled.scaled_rates(omega, scaled);
      for (std::size_t j = 0; j < m; ++j) {
        const double ref = legacy.propensity(j, n, omega);
        EXPECT_EQ(compiled.propensity(j, n, omega), ref)
            << context << " propensity reaction " << j << " omega " << omega;
        EXPECT_EQ(compiled.propensity_scaled(j, n, scaled[j]), ref)
            << context << " propensity_scaled reaction " << j << " omega "
            << omega;
      }
    }

    // apply() must produce the same counts through either table.
    for (std::size_t j = 0; j < m; ++j) {
      std::vector<std::int64_t> na = n, nb = n;
      legacy.apply(j, na);
      compiled.apply(j, nb);
      EXPECT_EQ(na, nb) << context << " apply reaction " << j;
    }
  }
}

TEST(CompiledSystem, PointwiseBitwiseOnHandcraftedShapes) {
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.reaction("A -> B", 0.7);
  b.reaction("2 A -> B", 1.3);
  b.reaction("A + B -> C", 2.1);
  b.reaction("0 -> A", 0.4);
  b.reaction("C + A -> C + B", 5.0);
  const SpeciesId a = *net.find_species("A");
  const SpeciesId bb = *net.find_species("B");
  const SpeciesId cc = *net.find_species("C");
  net.add({{a, 1}, {bb, 2}}, {{cc, 1}}, core::RateCategory::kCustom, 0.9);
  expect_pointwise_bitwise(net, 3, "handcrafted");
}

TEST(CompiledSystem, PointwiseBitwiseOnFuzzedNetworks) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const verify::GeneratedCase c =
        verify::generate_case(verify::CaseKind::kRawNetwork, seed);
    expect_pointwise_bitwise(c.network(), seed,
                             "raw seed " + std::to_string(seed));
  }
}

TEST(CompiledSystem, BothConstructorsAgree) {
  const ReactionNetwork network = builtin_network("moving_average");
  const MassActionSystem legacy(network);
  const CompiledSystem from_network{network};
  const CompiledSystem from_system{legacy};
  ASSERT_EQ(from_network.reaction_count(), from_system.reaction_count());
  for (std::size_t j = 0; j < from_network.reaction_count(); ++j) {
    EXPECT_EQ(from_network.rate(j), from_system.rate(j));
    EXPECT_EQ(from_network.order(j), from_system.order(j));
    EXPECT_EQ(from_network.kernel(j), from_system.kernel(j));
  }
}

// ---------------------------------------------------------------------------
// The next-reaction stale-propensity skip, against an always-recompute
// reference with the identical RNG draw order.

SsaResult reference_nrm_always_recompute(const MassActionSystem& system,
                                         const SsaOptions& options,
                                         std::vector<std::int64_t> counts) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  util::Rng rng(options.seed);
  const std::size_t m = system.reaction_count();
  SsaResult result;
  Trajectory trajectory(system.species_count());
  std::vector<double> scratch(system.species_count());
  double next_sample = 0.0;
  auto sample = [&](double t) {
    for (std::size_t i = 0; i < counts.size(); ++i) {
      scratch[i] = static_cast<double>(counts[i]) / options.omega;
    }
    trajectory.append(t, scratch);
  };
  auto before_event = [&](double t_event) {
    while (next_sample < t_event && next_sample <= options.t_end) {
      sample(next_sample);
      next_sample += options.record_interval;
    }
  };
  sample(0.0);
  next_sample = options.record_interval;

  std::vector<double> propensities(m);
  std::vector<double> firing_times(m);
  for (std::size_t j = 0; j < m; ++j) {
    propensities[j] = system.propensity(j, counts, options.omega);
    firing_times[j] =
        propensities[j] > 0.0 ? rng.exponential(propensities[j]) : kInf;
  }

  double t = 0.0;
  while (result.events < options.max_events) {
    std::size_t fired = 0;
    double t_next = firing_times[0];
    for (std::size_t j = 1; j < m; ++j) {
      if (firing_times[j] < t_next) {
        t_next = firing_times[j];
        fired = j;
      }
    }
    if (t_next == kInf) {
      result.exhausted = true;
      break;
    }
    if (t_next > options.t_end) {
      t = options.t_end;
      break;
    }
    before_event(t_next);
    system.apply(fired, counts);
    t = t_next;
    ++result.events;
    for (const std::uint32_t dep : system.affected_reactions(fired)) {
      // The production loop skips this recompute for pure catalysis; the
      // reference never does. RNG consumption is identical either way.
      const double a_new = system.propensity(dep, counts, options.omega);
      double new_time;
      if (dep == fired) {
        new_time = a_new > 0.0 ? t + rng.exponential(a_new) : kInf;
      } else {
        const double a_old = propensities[dep];
        const double old_time = firing_times[dep];
        if (a_new <= 0.0) {
          new_time = kInf;
        } else if (a_old <= 0.0 || old_time == kInf) {
          new_time = t + rng.exponential(a_new);
        } else {
          new_time = t + (a_old / a_new) * (old_time - t);
        }
      }
      propensities[dep] = a_new;
      firing_times[dep] = new_time;
    }
  }
  result.hit_event_limit =
      result.events >= options.max_events && t < options.t_end;
  result.end_time = std::min(t, options.t_end);
  before_event(result.end_time);
  sample(result.end_time);
  result.trajectory = std::move(trajectory);
  result.final_counts = std::move(counts);
  return result;
}

TEST(NextReactionStaleSkip, MatchesAlwaysRecomputeReference) {
  // Catalysis-heavy fixture: the first two reactions leave their own
  // reactant counts untouched, so the skip path fires on most events.
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.reaction("C -> C + A", 4.0);
  b.reaction("D -> D + B", 3.0);
  b.reaction("A + B -> C", 1.0);
  b.reaction("A -> B", 0.5);
  b.reaction("2 B -> D", 0.8);
  net.set_initial(*net.find_species("C"), 1.0);
  net.set_initial(*net.find_species("D"), 1.0);
  net.set_initial(*net.find_species("A"), 0.5);

  SsaOptions options;
  options.method = SsaMethod::kNextReaction;
  options.t_end = 2.0;
  options.omega = 400.0;
  options.record_interval = 0.1;
  options.max_events = 200'000;

  const MassActionSystem legacy(net);
  // The fixture must actually exercise the skip: the catalytic reactions
  // carry affects_own_reactants == false.
  ASSERT_FALSE(legacy.affects_own_reactants(0));
  ASSERT_FALSE(legacy.affects_own_reactants(1));
  ASSERT_TRUE(legacy.affects_own_reactants(2));

  for (const std::uint64_t seed : {1ull, 9ull, 42ull}) {
    options.seed = seed;
    const SsaResult reference = reference_nrm_always_recompute(
        legacy, options, to_counts(net.initial_state(), options.omega));
    ASSERT_GT(reference.events, 100u) << "fixture too quiet to regress";

    options.engine.kind = EngineKind::kLegacy;
    const SsaResult legacy_run = simulate_ssa(net, options);
    options.engine.kind = EngineKind::kCompiled;
    const SsaResult compiled_run = simulate_ssa(net, options);

    expect_ssa_results_bitwise(reference, legacy_run,
                               "seed " + std::to_string(seed) + " legacy");
    expect_ssa_results_bitwise(reference, compiled_run,
                               "seed " + std::to_string(seed) + " compiled");
  }
}

// ---------------------------------------------------------------------------
// Arena allocator.

TEST(Arena, SpansAreValueInitializedAndAligned) {
  Arena arena;
  const std::span<double> d = arena.alloc<double>(17);
  ASSERT_EQ(d.size(), 17u);
  for (const double v : d) EXPECT_EQ(v, 0.0);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d.data()) % alignof(double), 0u);
  const std::span<std::uint8_t> bytes = arena.alloc<std::uint8_t>(3);
  const std::span<double> d2 = arena.alloc<double>(5);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d2.data()) % alignof(double),
            0u);
  EXPECT_EQ(bytes.size(), 3u);
}

TEST(Arena, EarlierSpansSurviveBlockGrowth) {
  Arena arena(256);
  const std::span<double> first = arena.alloc<double>(8);
  first[0] = 1.5;
  first[7] = -2.5;
  // Force several new blocks; earlier spans must stay intact (blocks are
  // never reallocated).
  for (int i = 0; i < 20; ++i) (void)arena.alloc<double>(100);
  EXPECT_EQ(first[0], 1.5);
  EXPECT_EQ(first[7], -2.5);
  EXPECT_GE(arena.bytes_allocated(), 8 * sizeof(double) +
                                         20 * 100 * sizeof(double));
}

TEST(Arena, ZeroCountAllocIsEmpty) {
  Arena arena;
  EXPECT_TRUE(arena.alloc<double>(0).empty());
  EXPECT_EQ(arena.bytes_allocated(), 0u);
}

}  // namespace
}  // namespace mrsc::sim
