// Fault injection and perturbation campaigns: every FaultSpec kind is
// applied to a small network and checked for effect and determinism, and a
// miniature campaign exercises the margin computation end to end.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/io.hpp"
#include "core/network.hpp"
#include "sim/ode.hpp"
#include "stress/campaign.hpp"
#include "stress/fault.hpp"

namespace mrsc::stress {
namespace {

using core::RateCategory;
using core::ReactionNetwork;

/// A: 1.0 -> B (slow), B -> C (fast), C -> 0 (custom); labels a/b/c.
ReactionNetwork mixed_network() {
  ReactionNetwork net;
  const core::SpeciesId a = net.add_species("A", 1.0);
  const core::SpeciesId b = net.add_species("B", 0.0);
  const core::SpeciesId c = net.add_species("C", 0.5);
  net.add({{a, 1}}, {{b, 1}}, RateCategory::kSlow, 0.0, "clk.a");
  net.add({{b, 1}}, {{c, 1}}, RateCategory::kFast, 0.0, "data.b");
  net.add({{c, 1}}, {}, RateCategory::kCustom, 2.0, "data.c");
  return net;
}

std::vector<double> multipliers(const ReactionNetwork& net) {
  std::vector<double> out;
  for (std::size_t r = 0; r < net.reaction_count(); ++r) {
    out.push_back(
        net.reaction(core::ReactionId(static_cast<std::uint32_t>(r)))
            .rate_multiplier());
  }
  return out;
}

TEST(FaultSpecs, RateJitterIsSeededAndDeterministic) {
  const ReactionNetwork net = mixed_network();
  const FaultSpec spec[] = {FaultSpec::rate_jitter(0.3, 11)};
  const FaultedNetwork a = apply_faults(net, spec);
  const FaultedNetwork b = apply_faults(net, spec);
  EXPECT_EQ(core::serialize_network(a.network),
            core::serialize_network(b.network));
  EXPECT_EQ(multipliers(a.network), multipliers(b.network));
  const FaultSpec other[] = {FaultSpec::rate_jitter(0.3, 12)};
  EXPECT_NE(multipliers(a.network),
            multipliers(apply_faults(net, other).network));
  // Every reaction was touched; the original is untouched.
  for (const double m : multipliers(a.network)) EXPECT_NE(m, 1.0);
  for (const double m : multipliers(net)) EXPECT_EQ(m, 1.0);
}

TEST(FaultSpecs, CategoryJitterOnlyTouchesItsCategory) {
  const ReactionNetwork net = mixed_network();
  const FaultSpec spec[] = {
      FaultSpec::category_jitter(RateCategory::kSlow, 0.3, 11)};
  const std::vector<double> m = multipliers(apply_faults(net, spec).network);
  EXPECT_NE(m[0], 1.0);  // the slow reaction
  EXPECT_EQ(m[1], 1.0);  // fast untouched
  EXPECT_EQ(m[2], 1.0);  // custom untouched
}

TEST(FaultSpecs, ClockSkewMatchesPrefixAndRejectsEmptyMatch) {
  const ReactionNetwork net = mixed_network();
  const FaultSpec spec[] = {FaultSpec::clock_skew(0.3, 11, "clk.")};
  const std::vector<double> m = multipliers(apply_faults(net, spec).network);
  EXPECT_NE(m[0], 1.0);
  EXPECT_EQ(m[1], 1.0);
  EXPECT_EQ(m[2], 1.0);
  const FaultSpec miss[] = {FaultSpec::clock_skew(0.3, 11, "nope.")};
  EXPECT_THROW((void)apply_faults(net, miss), std::invalid_argument);
}

TEST(FaultSpecs, ReactionJitterTargetsOneLabel) {
  const ReactionNetwork net = mixed_network();
  const FaultSpec spec[] = {FaultSpec::reaction_jitter("data.b", 0.3, 11)};
  const std::vector<double> m = multipliers(apply_faults(net, spec).network);
  EXPECT_EQ(m[0], 1.0);
  EXPECT_NE(m[1], 1.0);
  EXPECT_EQ(m[2], 1.0);
  const FaultSpec miss[] = {FaultSpec::reaction_jitter("banana", 0.3, 11)};
  EXPECT_THROW((void)apply_faults(net, miss), std::invalid_argument);
}

TEST(FaultSpecs, LeakAddsOneDecayPerMatchingSpecies) {
  const ReactionNetwork net = mixed_network();
  const FaultSpec all[] = {FaultSpec::leak(0.01)};
  const FaultedNetwork leaked = apply_faults(net, all);
  EXPECT_EQ(leaked.network.reaction_count(), net.reaction_count() + 3);
  const core::Reaction& leak = leaked.network.reaction(
      core::ReactionId(static_cast<std::uint32_t>(net.reaction_count())));
  EXPECT_EQ(leak.label(), "stress.leak.A");
  EXPECT_TRUE(leak.products().empty());
  EXPECT_DOUBLE_EQ(leak.custom_rate(),
                   0.01 * net.rate_policy().k_slow);
  const FaultSpec some[] = {FaultSpec::leak(0.01, "B")};
  EXPECT_EQ(apply_faults(net, some).network.reaction_count(),
            net.reaction_count() + 1);
  const FaultSpec none[] = {FaultSpec::leak(0.01, "zzz")};
  EXPECT_THROW((void)apply_faults(net, none), std::invalid_argument);
}

TEST(FaultSpecs, InitialNoiseSkipsZeroInitials) {
  const ReactionNetwork net = mixed_network();
  const FaultSpec spec[] = {FaultSpec::initial_noise(0.3, 11)};
  const FaultedNetwork noisy = apply_faults(net, spec);
  EXPECT_NE(noisy.network.initial(core::SpeciesId{0}), 1.0);
  EXPECT_EQ(noisy.network.initial(core::SpeciesId{1}), 0.0);  // stays zero
  EXPECT_NE(noisy.network.initial(core::SpeciesId{2}), 0.5);
}

TEST(FaultSpecs, StoichiometrySpecDuplicatesFirstProduct) {
  const ReactionNetwork net = mixed_network();
  const FaultSpec spec[] = {FaultSpec::stoichiometry("clk.a")};
  const FaultedNetwork faulted = apply_faults(net, spec);
  EXPECT_EQ(faulted.network.reaction(core::ReactionId{0}).products()[0].stoich,
            2u);
  EXPECT_EQ(net.reaction(core::ReactionId{0}).products()[0].stoich, 1u);
}

TEST(FaultEvents, InjectionAndLossFireAtTheirTimes) {
  // A reaction-free network: the state only changes through fault events.
  ReactionNetwork net;
  net.add_species("X", 1.0);
  const FaultSpec specs[] = {FaultSpec::injection("X", 0.5, 1.0),
                             FaultSpec::loss("X", 0.5, 3.0)};
  FaultedNetwork faulted = apply_faults(net, specs);
  ASSERT_EQ(faulted.events.size(), 2u);
  FaultEventObserver events(std::move(faulted.events));
  sim::Observer* observers[] = {&events};
  sim::OdeOptions options;
  options.t_end = 5.0;
  const sim::OdeResult run =
      sim::simulate_ode(faulted.network, options, faulted.network.initial_state(),
                        std::span<sim::Observer* const>(observers, 1));
  EXPECT_EQ(events.applied_count(), 2u);
  // (1.0 + 0.5) * (1 - 0.5) = 0.75
  EXPECT_NEAR(run.trajectory.final_state()[0], 0.75, 1e-9);
  // reset() re-arms the observer for a fallback-ladder retry.
  events.reset();
  EXPECT_EQ(events.applied_count(), 0u);
}

TEST(FaultEvents, UnknownSpeciesThrows) {
  ReactionNetwork net;
  net.add_species("X", 1.0);
  const FaultSpec specs[] = {FaultSpec::injection("Y", 0.5, 1.0)};
  EXPECT_THROW((void)apply_faults(net, specs), std::invalid_argument);
}

// --- campaigns ------------------------------------------------------------

TEST(Campaign, DefaultGridsAreAscendingAndNonEmpty) {
  for (const FaultKind kind :
       {FaultKind::kRateJitter, FaultKind::kClockSkew, FaultKind::kLeak,
        FaultKind::kInjection, FaultKind::kLoss, FaultKind::kInitialNoise}) {
    const std::vector<double> grid = default_intensities(kind);
    ASSERT_FALSE(grid.empty());
    for (std::size_t i = 1; i < grid.size(); ++i) {
      EXPECT_LT(grid[i - 1], grid[i]);
    }
  }
}

TEST(Campaign, RejectsFaultKindsWithoutAnIntensityKnob) {
  CampaignConfig config;
  config.fault = FaultKind::kStoichiometry;
  EXPECT_THROW((void)run_campaign(config), std::invalid_argument);
  config.fault = FaultKind::kRateJitterReaction;
  EXPECT_THROW((void)run_campaign(config), std::invalid_argument);
}

TEST(Campaign, CounterRateJitterHasNonzeroMargin) {
  CampaignConfig config;
  config.design = Design::kCounter;
  config.fault = FaultKind::kRateJitter;
  config.intensities = {0.02, 0.05};
  config.trials = 1;
  const CampaignResult result = run_campaign(config);
  ASSERT_EQ(result.intensities.size(), 2u);
  EXPECT_TRUE(result.margin_found);
  EXPECT_DOUBLE_EQ(result.margin, 0.05);
  for (const IntensityResult& point : result.intensities) {
    EXPECT_TRUE(point.all_ok());
    for (const TrialResult& trial : point.trials) {
      EXPECT_EQ(trial.status, TrialStatus::kOk);
      EXPECT_EQ(trial.attempts, 1u);
    }
  }
  // The table and JSON renderings carry the margin.
  EXPECT_NE(result.to_table().find("robustness margin"), std::string::npos);
  EXPECT_NE(result.to_json().find("\"margin\": 0.05"), std::string::npos);
}

TEST(Campaign, ResultsAreIdenticalAcrossThreadCounts) {
  CampaignConfig config;
  config.design = Design::kCounter;
  config.fault = FaultKind::kRateJitter;
  config.intensities = {0.02, 0.05};
  config.trials = 2;
  config.threads = 1;
  const CampaignResult serial = run_campaign(config);
  config.threads = 8;
  const CampaignResult parallel = run_campaign(config);
  EXPECT_EQ(serial.to_json(), parallel.to_json());
}

TEST(Campaign, ParsersRoundTrip) {
  for (const Design design :
       {Design::kCounter, Design::kMovingAverage, Design::kSequenceDetector,
        Design::kAsyncChain}) {
    EXPECT_EQ(parse_design(to_string(design)), design);
  }
  EXPECT_FALSE(parse_design("banana").has_value());
  for (const FaultKind kind :
       {FaultKind::kRateJitter, FaultKind::kRateJitterCategory,
        FaultKind::kRateJitterReaction, FaultKind::kClockSkew,
        FaultKind::kLeak, FaultKind::kInjection, FaultKind::kLoss,
        FaultKind::kInitialNoise, FaultKind::kStoichiometry}) {
    EXPECT_EQ(parse_fault_kind(to_string(kind)), kind);
  }
  EXPECT_FALSE(parse_fault_kind("banana").has_value());
}

}  // namespace
}  // namespace mrsc::stress
