#include "sim/trajectory.hpp"

#include <gtest/gtest.h>

namespace mrsc::sim {
namespace {

using core::SpeciesId;

Trajectory sample_trajectory() {
  Trajectory t(2);
  t.append(0.0, std::vector<double>{1.0, 0.0});
  t.append(1.0, std::vector<double>{0.5, 0.5});
  t.append(2.0, std::vector<double>{0.0, 1.0});
  return t;
}

TEST(Trajectory, AppendAndQuery) {
  const Trajectory t = sample_trajectory();
  EXPECT_EQ(t.sample_count(), 3u);
  EXPECT_EQ(t.species_count(), 2u);
  EXPECT_DOUBLE_EQ(t.value(1, SpeciesId{0}), 0.5);
  EXPECT_DOUBLE_EQ(t.final_value(SpeciesId{1}), 1.0);
  EXPECT_DOUBLE_EQ(t.final_time(), 2.0);
}

TEST(Trajectory, AppendSizeMismatchThrows) {
  Trajectory t(2);
  EXPECT_THROW(t.append(0.0, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(Trajectory, TimeMustNotGoBackwards) {
  Trajectory t(1);
  t.append(1.0, std::vector<double>{0.0});
  EXPECT_THROW(t.append(0.5, std::vector<double>{0.0}),
               std::invalid_argument);
  EXPECT_NO_THROW(t.append(1.0, std::vector<double>{0.0}));  // equal is OK
}

TEST(Trajectory, EmptyQueriesThrow) {
  Trajectory t(1);
  EXPECT_TRUE(t.empty());
  EXPECT_THROW((void)t.final_state(), std::logic_error);
  EXPECT_THROW((void)t.value_at(0.0, SpeciesId{0}), std::logic_error);
}

TEST(Trajectory, LinearInterpolation) {
  const Trajectory t = sample_trajectory();
  EXPECT_DOUBLE_EQ(t.value_at(0.5, SpeciesId{0}), 0.75);
  EXPECT_DOUBLE_EQ(t.value_at(1.5, SpeciesId{1}), 0.75);
}

TEST(Trajectory, InterpolationClampsOutOfRange) {
  const Trajectory t = sample_trajectory();
  EXPECT_DOUBLE_EQ(t.value_at(-5.0, SpeciesId{0}), 1.0);
  EXPECT_DOUBLE_EQ(t.value_at(99.0, SpeciesId{0}), 0.0);
}

TEST(Trajectory, WindowExtrema) {
  const Trajectory t = sample_trajectory();
  EXPECT_DOUBLE_EQ(t.max_in_window(SpeciesId{0}, 0.0, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(t.min_in_window(SpeciesId{0}, 0.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(t.max_in_window(SpeciesId{0}, 0.9, 2.0), 0.5);
  EXPECT_THROW((void)t.max_in_window(SpeciesId{0}, 5.0, 6.0),
               std::invalid_argument);
}

TEST(Trajectory, Series) {
  const Trajectory t = sample_trajectory();
  const auto s = t.series(SpeciesId{1});
  EXPECT_EQ(s, (std::vector<double>{0.0, 0.5, 1.0}));
}

TEST(Trajectory, CsvExport) {
  core::ReactionNetwork net;
  const SpeciesId a = net.add_species("alpha");
  const SpeciesId b = net.add_species("beta");
  const Trajectory t = sample_trajectory();
  const std::vector<SpeciesId> ids = {a, b};
  const std::string csv = t.to_csv(net, ids);
  EXPECT_NE(csv.find("time,alpha,beta"), std::string::npos);
  EXPECT_NE(csv.find("1,0.5,0.5"), std::string::npos);
}

}  // namespace
}  // namespace mrsc::sim
