#include "modules/multiply.hpp"

#include <gtest/gtest.h>

#include "sim/ssa.hpp"

namespace mrsc::modules {
namespace {

using core::ReactionNetwork;

// The iterative modules operate on discrete counts; validate under exact
// stochastic simulation with a large fast/slow separation (the hazard window
// at each phase advance shrinks with the ratio).
sim::SsaOptions ssa_options(std::uint64_t seed) {
  sim::SsaOptions options;
  options.t_end = 4000.0;
  options.omega = 1.0;
  options.seed = seed;
  options.record_interval = 50.0;
  return options;
}

struct MultiplyCase {
  std::int64_t x;
  std::int64_t y;
};

class MultiplierTest : public ::testing::TestWithParam<MultiplyCase> {};

TEST_P(MultiplierTest, ComputesProductOnCounts) {
  const auto [x, y] = GetParam();
  ReactionNetwork net;
  net.set_rate_policy(core::RatePolicy{1.0, 10000.0});
  const MultiplierHandles handles = build_multiplier(net, "mul");
  net.set_initial(handles.x, static_cast<double>(x));
  net.set_initial(handles.y, static_cast<double>(y));

  const sim::SsaResult result = simulate_ssa(net, ssa_options(5));
  EXPECT_EQ(result.final_counts[handles.z.index()], x * y)
      << "x=" << x << " y=" << y;
  // X is preserved (in X or X2 depending on iteration parity).
  EXPECT_EQ(result.final_counts[handles.x.index()] +
                result.final_counts[handles.x2.index()],
            x);
  // Loop counter fully consumed; token back at idle.
  EXPECT_EQ(result.final_counts[handles.y.index()], 0);
  EXPECT_EQ(result.final_counts[handles.token_idle.index()], 1);
}

INSTANTIATE_TEST_SUITE_P(SmallProducts, MultiplierTest,
                         ::testing::Values(MultiplyCase{3, 4},
                                           MultiplyCase{1, 1},
                                           MultiplyCase{5, 2},
                                           MultiplyCase{2, 5},
                                           MultiplyCase{7, 3},
                                           MultiplyCase{4, 4}));

TEST(Multiplier, ZeroTimesAnythingIsZero) {
  ReactionNetwork net;
  net.set_rate_policy(core::RatePolicy{1.0, 10000.0});
  const MultiplierHandles handles = build_multiplier(net, "mul");
  net.set_initial(handles.x, 0.0);
  net.set_initial(handles.y, 4.0);
  const sim::SsaResult result = simulate_ssa(net, ssa_options(6));
  EXPECT_EQ(result.final_counts[handles.z.index()], 0);
  EXPECT_EQ(result.final_counts[handles.token_idle.index()], 1);
}

TEST(Multiplier, AnythingTimesZeroIsZero) {
  ReactionNetwork net;
  net.set_rate_policy(core::RatePolicy{1.0, 10000.0});
  const MultiplierHandles handles = build_multiplier(net, "mul");
  net.set_initial(handles.x, 5.0);
  net.set_initial(handles.y, 0.0);
  const sim::SsaResult result = simulate_ssa(net, ssa_options(7));
  EXPECT_EQ(result.final_counts[handles.z.index()], 0);
  EXPECT_EQ(result.final_counts[handles.x.index()], 5);
}

TEST(Multiplier, SeededDeterminism) {
  ReactionNetwork net;
  net.set_rate_policy(core::RatePolicy{1.0, 10000.0});
  const MultiplierHandles handles = build_multiplier(net, "mul");
  net.set_initial(handles.x, 3.0);
  net.set_initial(handles.y, 3.0);
  const sim::SsaResult a = simulate_ssa(net, ssa_options(9));
  const sim::SsaResult b = simulate_ssa(net, ssa_options(9));
  EXPECT_EQ(a.final_counts, b.final_counts);
}

struct PowerCase {
  std::int64_t x;
  std::int64_t k;
};

class TimesPower2Test : public ::testing::TestWithParam<PowerCase> {};

TEST_P(TimesPower2Test, DoublesKTimes) {
  const auto [x, k] = GetParam();
  ReactionNetwork net;
  net.set_rate_policy(core::RatePolicy{1.0, 10000.0});
  const PowerOfTwoHandles handles = build_times_power2(net, "pw");
  net.set_initial(handles.x, static_cast<double>(x));
  net.set_initial(handles.k, static_cast<double>(k));
  const sim::SsaResult result = simulate_ssa(net, ssa_options(11));
  const std::int64_t total = result.final_counts[handles.x.index()] +
                             result.final_counts[handles.x2.index()];
  EXPECT_EQ(total, x << k) << "x=" << x << " k=" << k;
  EXPECT_EQ(result.final_counts[handles.token_idle.index()], 1);
}

INSTANTIATE_TEST_SUITE_P(SmallPowers, TimesPower2Test,
                         ::testing::Values(PowerCase{1, 3}, PowerCase{3, 2},
                                           PowerCase{2, 0}, PowerCase{5, 1},
                                           PowerCase{1, 5}));

}  // namespace
}  // namespace mrsc::modules
