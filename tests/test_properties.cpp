// Cross-cutting property tests on randomly generated networks: invariants
// that must hold for *any* mass-action system, regardless of structure.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/conservation.hpp"
#include "core/io.hpp"
#include "core/network.hpp"
#include "sim/ode.hpp"
#include "sim/ssa.hpp"
#include "sync/clock.hpp"
#include "util/rng.hpp"
#include "verify/generator.hpp"
#include "verify/oracles.hpp"

namespace mrsc {
namespace {

using core::RateCategory;
using core::ReactionNetwork;
using core::SpeciesId;
using core::Term;

/// Random network with reactions of order <= 2 and bounded products.
ReactionNetwork random_network(std::uint64_t seed, bool closed) {
  util::Rng rng(seed);
  ReactionNetwork net;
  const std::size_t n = 3 + rng.uniform_below(5);
  for (std::size_t i = 0; i < n; ++i) {
    net.add_species("S" + std::to_string(i), rng.uniform(0.1, 2.0));
  }
  auto pick = [&] {
    return SpeciesId{
        static_cast<SpeciesId::underlying_type>(rng.uniform_below(n))};
  };
  const std::size_t reactions = 4 + rng.uniform_below(6);
  for (std::size_t j = 0; j < reactions; ++j) {
    std::vector<Term> reactants;
    std::vector<Term> products;
    if (closed) {
      // Mass-preserving shapes: k reactants -> k products, k in {1, 2}.
      const std::size_t k = 1 + rng.uniform_below(2);
      for (std::size_t i = 0; i < k; ++i) {
        reactants.push_back({pick(), 1});
        products.push_back({pick(), 1});
      }
    } else {
      const std::size_t order = rng.uniform_below(3);
      for (std::size_t i = 0; i < order; ++i) reactants.push_back({pick(), 1});
      const std::size_t out = rng.uniform_below(3);
      for (std::size_t i = 0; i < out; ++i) products.push_back({pick(), 1});
      if (reactants.empty() && products.empty()) {
        products.push_back({pick(), 1});
      }
    }
    net.add(std::move(reactants), std::move(products), RateCategory::kCustom,
            rng.uniform(0.2, 3.0));
  }
  return net;
}

class RandomNetworkTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomNetworkTest, OdeStaysNonNegative) {
  const ReactionNetwork net =
      random_network(static_cast<std::uint64_t>(GetParam()) * 7919 + 1,
                     /*closed=*/false);
  sim::OdeOptions options;
  options.t_end = 5.0;
  options.record_interval = 0.25;
  const sim::OdeResult run = simulate_ode(net, options);
  for (std::size_t k = 0; k < run.trajectory.sample_count(); ++k) {
    for (std::size_t i = 0; i < net.species_count(); ++i) {
      EXPECT_GE(run.trajectory.value(
                    k, SpeciesId{static_cast<SpeciesId::underlying_type>(i)}),
                0.0)
          << "seed " << GetParam();
    }
  }
}

TEST_P(RandomNetworkTest, ClosedNetworkConservesTotalMass) {
  const ReactionNetwork net =
      random_network(static_cast<std::uint64_t>(GetParam()) * 104729 + 3,
                     /*closed=*/true);
  sim::OdeOptions options;
  options.t_end = 5.0;
  const sim::OdeResult run = simulate_ode(net, options);
  double initial_total = 0.0;
  double final_total = 0.0;
  const auto initial = net.initial_state();
  const auto final_state = run.trajectory.final_state();
  for (std::size_t i = 0; i < net.species_count(); ++i) {
    initial_total += initial[i];
    final_total += final_state[i];
  }
  EXPECT_NEAR(final_total, initial_total, 1e-5 * initial_total);
}

TEST_P(RandomNetworkTest, IntegratorsAgree) {
  const ReactionNetwork net =
      random_network(static_cast<std::uint64_t>(GetParam()) * 31 + 17,
                     /*closed=*/false);
  sim::OdeOptions adaptive;
  adaptive.t_end = 3.0;
  sim::OdeOptions fixed;
  fixed.t_end = 3.0;
  fixed.method = sim::OdeMethod::kRk4Fixed;
  fixed.dt = 5e-4;
  const auto a = simulate_ode(net, adaptive).trajectory;
  const auto b = simulate_ode(net, fixed).trajectory;
  for (std::size_t i = 0; i < net.species_count(); ++i) {
    const SpeciesId id{static_cast<SpeciesId::underlying_type>(i)};
    EXPECT_NEAR(a.final_value(id), b.final_value(id),
                1e-3 + 1e-3 * std::abs(b.final_value(id)))
        << "species " << i << " seed " << GetParam();
  }
}

TEST_P(RandomNetworkTest, SerializationRoundTripsExactly) {
  const ReactionNetwork net =
      random_network(static_cast<std::uint64_t>(GetParam()) * 13 + 5,
                     /*closed=*/false);
  const std::string once = core::serialize_network(net);
  const std::string twice =
      core::serialize_network(core::parse_network(once));
  EXPECT_EQ(once, twice);
}

TEST_P(RandomNetworkTest, SsaMeanTracksOdeOnClosedNetworks) {
  const ReactionNetwork net =
      random_network(static_cast<std::uint64_t>(GetParam()) * 271 + 9,
                     /*closed=*/true);
  sim::OdeOptions ode;
  ode.t_end = 2.0;
  const auto deterministic = simulate_ode(net, ode).trajectory;

  sim::SsaOptions ssa;
  ssa.t_end = 2.0;
  ssa.omega = 400.0;
  std::vector<double> mean(net.species_count(), 0.0);
  constexpr int kRuns = 12;
  for (int run = 0; run < kRuns; ++run) {
    ssa.seed = 3000 + static_cast<std::uint64_t>(run);
    const auto counts = simulate_ssa(net, ssa).final_counts;
    for (std::size_t i = 0; i < mean.size(); ++i) {
      mean[i] += static_cast<double>(counts[i]) / ssa.omega / kRuns;
    }
  }
  for (std::size_t i = 0; i < mean.size(); ++i) {
    const SpeciesId id{static_cast<SpeciesId::underlying_type>(i)};
    // Loose bound: 12 runs at omega=400 gives stderr ~ 0.01-0.03.
    EXPECT_NEAR(mean[i], deterministic.final_value(id), 0.12)
        << "species " << i << " seed " << GetParam();
  }
}

TEST_P(RandomNetworkTest, ConservationLawsHoldUnderSsa) {
  const ReactionNetwork net =
      random_network(static_cast<std::uint64_t>(GetParam()) * 401 + 2,
                     /*closed=*/true);
  const auto laws = analysis::conservation_laws(net);
  ASSERT_FALSE(laws.empty());
  sim::SsaOptions ssa;
  ssa.t_end = 2.0;
  ssa.omega = 300.0;
  ssa.seed = 77;
  const auto result = simulate_ssa(net, ssa);
  // Conservation must hold exactly in counts (scaled by omega) for integer
  // laws; allow rounding slack for fractional weights.
  const auto initial = sim::to_counts(net.initial_state(), ssa.omega);
  for (const auto& law : laws) {
    double before = 0.0;
    double after = 0.0;
    for (std::size_t i = 0; i < law.size(); ++i) {
      before += law[i] * static_cast<double>(initial[i]);
      after += law[i] * static_cast<double>(result.final_counts[i]);
    }
    EXPECT_NEAR(after, before, 1e-6 * std::abs(before) + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetworkTest, ::testing::Range(0, 10));

// --- structured synchronous circuits from the verify generator --------------
//
// The paper's clock and dual-rail invariants, checked on *structured* random
// designs (clock + registers + random combinational logic) rather than flat
// random networks. Free-running the compiled network for a few clock periods
// is enough to exercise the invariants; driving inputs is the (slower) fuzz
// CLI's job.

/// Free-run horizon covering ~3.5 clock periods under the default policy.
sim::Trajectory free_run(const ReactionNetwork& net) {
  sim::OdeOptions options;
  options.t_end = 3.5 * 15.0 * sync::ClockSpec{}.phase_stretch /
                  net.rate_policy().k_slow;
  return simulate_ode(net, options).trajectory;
}

verify::GeneratorOptions cheap_circuits() {
  verify::GeneratorOptions options;
  options.cycles = 2;
  return options;
}

class StructuredCircuitTest : public ::testing::TestWithParam<int> {};

TEST_P(StructuredCircuitTest, ClockPhaseTokenStaysUnique) {
  const verify::GeneratedCase c =
      verify::generate_case(verify::CaseKind::kSyncCircuit,
                            static_cast<std::uint64_t>(GetParam()),
                            cheap_circuits());
  const auto& payload = std::get<verify::SyncCase>(c.payload);
  const sim::Trajectory trajectory = free_run(c.network());
  const auto v =
      verify::check_clock_phase_token(payload.circuit.clock, trajectory);
  EXPECT_FALSE(v.has_value()) << "seed " << GetParam() << ": " << v->detail;
}

TEST_P(StructuredCircuitTest, DualRailPairsStayExclusive) {
  const verify::GeneratedCase c =
      verify::generate_case(verify::CaseKind::kDualRailCircuit,
                            static_cast<std::uint64_t>(GetParam()),
                            cheap_circuits());
  const auto& payload = std::get<verify::DualRailCase>(c.payload);
  const sim::Trajectory trajectory = free_run(c.network());
  const auto clock =
      verify::check_clock_phase_token(payload.circuit.clock, trajectory);
  EXPECT_FALSE(clock.has_value())
      << "seed " << GetParam() << ": " << clock->detail;
  const auto rails = verify::check_dual_rail_exclusive(
      c.network(), trajectory, payload.rail_pairs);
  EXPECT_FALSE(rails.has_value())
      << "seed " << GetParam() << ": " << rails->detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, StructuredCircuitTest,
                         ::testing::Range(0, 50));

}  // namespace
}  // namespace mrsc
