#include "sim/observer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mrsc::sim {
namespace {

using core::SpeciesId;

// Feeds a synthetic waveform to an observer one step at a time.
void drive(Observer& observer, const std::vector<double>& times,
           const std::vector<double>& values, SpeciesId species,
           std::size_t state_size = 1) {
  std::vector<double> state(state_size, 0.0);
  for (std::size_t k = 0; k < times.size(); ++k) {
    state[species.index()] = values[k];
    observer.on_step(times[k], state);
  }
}

TEST(EdgeDetector, DetectsRisingAndFalling) {
  EdgeDetector detector(SpeciesId{0}, 0.2, 0.6);
  drive(detector, {0, 1, 2, 3, 4, 5, 6},
        {0.0, 0.3, 0.7, 0.9, 0.3, 0.1, 0.8}, SpeciesId{0});
  ASSERT_EQ(detector.rising_edges().size(), 2u);
  EXPECT_DOUBLE_EQ(detector.rising_edges()[0], 2.0);
  EXPECT_DOUBLE_EQ(detector.rising_edges()[1], 6.0);
  ASSERT_EQ(detector.falling_edges().size(), 1u);
  EXPECT_DOUBLE_EQ(detector.falling_edges()[0], 5.0);
}

TEST(EdgeDetector, HysteresisSuppressesChatter) {
  EdgeDetector detector(SpeciesId{0}, 0.2, 0.6);
  // Oscillation within the hysteresis band produces no edges.
  drive(detector, {0, 1, 2, 3, 4}, {0.0, 0.4, 0.3, 0.5, 0.35}, SpeciesId{0});
  EXPECT_TRUE(detector.rising_edges().empty());
  EXPECT_TRUE(detector.falling_edges().empty());
}

TEST(EdgeDetector, InitialHighStateIsNotAnEdge) {
  EdgeDetector detector(SpeciesId{0}, 0.2, 0.6);
  drive(detector, {0, 1}, {0.9, 0.95}, SpeciesId{0});
  EXPECT_TRUE(detector.rising_edges().empty());
}

TEST(EdgeDetector, InvalidThresholdsThrow) {
  EXPECT_THROW(EdgeDetector(SpeciesId{0}, 0.6, 0.2), std::invalid_argument);
  EXPECT_THROW(EdgeDetector(SpeciesId{0}, 0.5, 0.5), std::invalid_argument);
}

TEST(ScheduledInjector, InjectsAtTimes) {
  ScheduledInjector injector({{2.0, SpeciesId{0}, 1.5},
                              {1.0, SpeciesId{0}, 0.5}});
  std::vector<double> state = {0.0};
  injector.on_step(0.5, state);
  EXPECT_DOUBLE_EQ(state[0], 0.0);
  injector.on_step(1.1, state);
  EXPECT_DOUBLE_EQ(state[0], 0.5);  // events are sorted by time
  injector.on_step(3.0, state);
  EXPECT_DOUBLE_EQ(state[0], 2.0);
  EXPECT_EQ(injector.injected_count(), 2u);
}

TEST(ScheduledInjector, MultipleEventsInOneStep) {
  ScheduledInjector injector({{1.0, SpeciesId{0}, 1.0},
                              {1.5, SpeciesId{0}, 1.0}});
  std::vector<double> state = {0.0};
  injector.on_step(2.0, state);
  EXPECT_DOUBLE_EQ(state[0], 2.0);
}

TEST(EdgeTriggeredInjector, OneSamplePerRisingEdge) {
  EdgeTriggeredInjector injector(SpeciesId{0}, 0.2, 0.6, SpeciesId{1},
                                 {10.0, 20.0});
  std::vector<double> state = {0.0, 0.0};
  auto step = [&](double t, double clock) {
    state[0] = clock;
    injector.on_step(t, state);
  };
  step(0, 0.0);
  step(1, 0.9);  // edge 1 -> inject 10
  EXPECT_DOUBLE_EQ(state[1], 10.0);
  step(2, 0.1);
  step(3, 0.9);  // edge 2 -> inject 20
  EXPECT_DOUBLE_EQ(state[1], 30.0);
  step(4, 0.1);
  step(5, 0.9);  // edge 3 -> stream exhausted, nothing
  EXPECT_DOUBLE_EQ(state[1], 30.0);
  EXPECT_EQ(injector.injected_count(), 2u);
  EXPECT_EQ(injector.injection_times(), (std::vector<double>{1.0, 3.0}));
}

TEST(EdgeTriggeredInjector, SkipsWarmupEdges) {
  EdgeTriggeredInjector injector(SpeciesId{0}, 0.2, 0.6, SpeciesId{1},
                                 {5.0}, /*skip_edges=*/1);
  std::vector<double> state = {0.0, 0.0};
  auto step = [&](double t, double clock) {
    state[0] = clock;
    injector.on_step(t, state);
  };
  step(0, 0.0);
  step(1, 0.9);  // warmup edge: skipped
  EXPECT_DOUBLE_EQ(state[1], 0.0);
  step(2, 0.1);
  step(3, 0.9);  // first counted edge
  EXPECT_DOUBLE_EQ(state[1], 5.0);
}

TEST(EdgeTriggeredSampler, SamplesAndClears) {
  EdgeTriggeredSampler sampler(SpeciesId{0}, 0.2, 0.6, SpeciesId{1},
                               /*clear_after_read=*/true);
  std::vector<double> state = {0.0, 7.0};
  auto step = [&](double t, double clock) {
    state[0] = clock;
    sampler.on_step(t, state);
  };
  step(0, 0.0);
  step(1, 0.9);
  ASSERT_EQ(sampler.samples().size(), 1u);
  EXPECT_DOUBLE_EQ(sampler.samples()[0], 7.0);
  EXPECT_DOUBLE_EQ(state[1], 0.0);  // cleared
  state[1] = 3.0;
  step(2, 0.1);
  step(3, 0.9);
  EXPECT_DOUBLE_EQ(sampler.samples()[1], 3.0);
}

TEST(EdgeTriggeredSampler, NoClearMode) {
  EdgeTriggeredSampler sampler(SpeciesId{0}, 0.2, 0.6, SpeciesId{1},
                               /*clear_after_read=*/false);
  std::vector<double> state = {0.0, 7.0};
  state[0] = 0.0;
  sampler.on_step(0, state);
  state[0] = 0.9;
  sampler.on_step(1, state);
  EXPECT_DOUBLE_EQ(state[1], 7.0);
}

TEST(SteadyStateDetector, DetectsQuiescence) {
  SteadyStateDetector detector(1e-3, 1.0);
  std::vector<double> state = {1.0};
  detector.on_step(0.0, state);
  EXPECT_FALSE(detector.reached());
  // Change quickly: not steady.
  state[0] = 2.0;
  detector.on_step(1.5, state);
  EXPECT_FALSE(detector.reached());
  // Hold: steady after a window.
  state[0] = 2.0001;
  detector.on_step(3.0, state);
  EXPECT_TRUE(detector.reached());
  EXPECT_TRUE(detector.should_stop(3.0, state));
  EXPECT_DOUBLE_EQ(detector.reached_time(), 3.0);
}

TEST(SteadyStateDetector, InvalidParamsThrow) {
  EXPECT_THROW(SteadyStateDetector(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(SteadyStateDetector(1.0, -1.0), std::invalid_argument);
}

TEST(CallbackObserver, ForwardsCalls) {
  double seen_t = -1.0;
  CallbackObserver observer(
      [&](double t, std::span<double> state) {
        seen_t = t;
        state[0] += 1.0;
      });
  std::vector<double> state = {0.0};
  observer.on_step(2.5, state);
  EXPECT_DOUBLE_EQ(seen_t, 2.5);
  EXPECT_DOUBLE_EQ(state[0], 1.0);
}

}  // namespace
}  // namespace mrsc::sim
