// Static analyzer (lint/) tests.
//
// Three layers, mirroring the subsystem's contract:
//   1. every built-in design lints clean under -Werror at both opt levels
//      (the analyzer must not cry wolf on the designs the dynamic oracles
//      certify elsewhere);
//   2. for every check, a deliberately corrupted variant of a clean design
//      trips exactly the documented diagnostic id (the analyzer must not
//      stay silent on the defect class it owns);
//   3. the static-vs-dynamic cross-oracle (verify/lint_oracle.hpp) holds
//      over a seed sweep of generated cases.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "compile/passes.hpp"
#include "core/network.hpp"
#include "lint/lint.hpp"
#include "tools/builtin_designs.hpp"
#include "verify/generator.hpp"
#include "verify/lint_oracle.hpp"

namespace {

using namespace mrsc;

std::vector<std::string> design_names() {
  std::vector<std::string> names;
  std::string text = tools::builtin_design_names();
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    std::string name = text.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    while (!name.empty() && name.front() == ' ') name.erase(0, 1);
    if (!name.empty()) names.push_back(name);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return names;
}

tools::BuiltDesign build(const std::string& name,
                         compile::OptLevel opt = compile::OptLevel::kO0) {
  compile::CompileOptions options;
  options.opt = opt;
  return tools::build_design(name, options);
}

lint::LintInput input_for(const tools::BuiltDesign& design,
                          const std::string& name) {
  lint::LintInput input =
      lint::LintInput::from_design(*design.network, design.info, name);
  input.composition = design.composition.get();
  return input;
}

// --- layer 1: clean designs stay clean ------------------------------------

TEST(Lint, AllBuiltinDesignsCleanWithWerrorAtO0) {
  for (const std::string& name : design_names()) {
    const tools::BuiltDesign design = build(name);
    const lint::LintReport report = lint::run_lint(input_for(design, name));
    EXPECT_TRUE(report.clean(/*werror=*/true))
        << name << " at -O0:\n" << report.to_text();
  }
}

TEST(Lint, AllBuiltinDesignsCleanWithWerrorAtO1) {
  for (const std::string& name : design_names()) {
    const tools::BuiltDesign design = build(name, compile::OptLevel::kO1);
    const lint::LintReport report = lint::run_lint(input_for(design, name));
    EXPECT_TRUE(report.clean(/*werror=*/true))
        << name << " at -O1:\n" << report.to_text();
  }
}

TEST(Lint, CascadeEarnsIssCompositionCertificate) {
  const tools::BuiltDesign design = build("cascade");
  ASSERT_NE(design.composition, nullptr);
  const lint::LintReport report = lint::run_lint(input_for(design, "cascade"));
  EXPECT_TRUE(report.has("LINT-ISS-00")) << report.to_text();
  EXPECT_NE(report.to_text().find("arXiv:2506.12056"), std::string::npos);
}

TEST(Lint, MonolithicDesignSkipsIssCheck) {
  const tools::BuiltDesign design = build("counter");
  const lint::LintReport report = lint::run_lint(input_for(design, "counter"));
  bool skipped = false;
  for (const std::string& entry : report.checks_skipped) {
    if (entry.find("iss-composition") != std::string::npos) skipped = true;
  }
  EXPECT_TRUE(skipped) << report.to_text();
}

// --- layer 2: one seeded corruption per check -----------------------------

TEST(LintCorruption, LeakyStateTripsConservation) {
  tools::BuiltDesign design = build("delay");
  const lint::LintInput input = input_for(design, "delay");
  const auto state = input.roots_with(compile::PortRole::kState);
  ASSERT_FALSE(state.empty());
  // A slow leak out of a register species breaks the color-triple total
  // that conserves the stored value.
  design.network->add({{state.front(), 1}}, {}, core::RateCategory::kSlow,
                      0.0, "corrupt.leak");
  const lint::LintReport report = lint::run_lint(input);
  EXPECT_TRUE(report.has("LINT-CONS-01")) << report.to_text();
}

TEST(LintCorruption, SameGateReadWriteTripsPhaseRace) {
  tools::BuiltDesign design = build("delay");
  lint::LintInput input = input_for(design, "delay");
  ASSERT_TRUE(input.tags_valid);
  // The emission tags must cover the whole reaction tail for the appended
  // reactions to line up with the tags we push below.
  ASSERT_EQ(input.first_tagged + input.tags.size(),
            design.network->reaction_count());
  const auto clocks = input.roots_with(compile::PortRole::kClock);
  ASSERT_FALSE(clocks.empty());
  const core::SpeciesId gate = clocks.front();

  core::ReactionNetwork& network = *design.network;
  const core::SpeciesId source = network.add_species("race_source", 1.0);
  const core::SpeciesId shared = network.add_species("race_victim", 0.0);
  const core::SpeciesId sink = network.add_species("race_sink", 0.0);
  // Fill and drain the same species under the same clock gate: the read
  // can observe a half-deposited value.
  network.add({{gate, 1}, {source, 1}}, {{gate, 1}, {shared, 1}},
              core::RateCategory::kSlow, 0.0, "corrupt.write");
  network.add({{gate, 1}, {shared, 1}}, {{gate, 1}, {sink, 1}},
              core::RateCategory::kSlow, 0.0, "corrupt.read");
  input.tags.push_back(compile::ReactionTag::kGatedTransfer);
  input.tags.push_back(compile::ReactionTag::kGatedTransfer);

  const lint::LintReport report = lint::run_lint(input);
  EXPECT_TRUE(report.has("LINT-RACE-01")) << report.to_text();
}

TEST(LintCorruption, SelfReplicatingCatalystTripsStoichScreen) {
  tools::BuiltDesign design = build("counter");
  const lint::LintInput input = input_for(design, "counter");
  core::ReactionNetwork& network = *design.network;
  const core::SpeciesId cat = network.add_species("auto_cat", 1.0);
  network.add({{cat, 1}}, {{cat, 2}}, core::RateCategory::kSlow, 0.0,
              "corrupt.autocatalysis");
  const lint::LintReport report = lint::run_lint(input);
  EXPECT_TRUE(report.has("LINT-RACE-02")) << report.to_text();
}

TEST(LintCorruption, CollapsedRatePolicyTripsTimescale) {
  tools::BuiltDesign design = build("counter");
  core::RatePolicy policy = design.network->rate_policy();
  policy.k_fast = 1e-6 * policy.k_slow;  // fast no faster than slow
  design.network->set_rate_policy(policy);
  const lint::LintReport report =
      lint::run_lint(input_for(design, "counter"));
  EXPECT_TRUE(report.has("LINT-TIME-01")) << report.to_text();
}

TEST(LintCorruption, ThinMarginWarnsTimescale) {
  const tools::BuiltDesign design = build("counter");
  lint::LintOptions options;
  // Pin the thresholds around the design's actual ratio so the warning
  // band is exercised regardless of the default policy's numbers.
  options.timescale_error_ratio = 1e-9;
  options.timescale_warn_ratio = 1e9;
  const lint::LintReport report =
      lint::run_lint(input_for(design, "counter"), options);
  EXPECT_TRUE(report.has("LINT-TIME-02")) << report.to_text();
}

TEST(LintCorruption, RailCoProductionTripsDualRail) {
  tools::BuiltDesign design = build("first_difference");
  core::ReactionNetwork& network = *design.network;
  core::SpeciesId pos = core::SpeciesId::invalid();
  core::SpeciesId neg = core::SpeciesId::invalid();
  for (std::size_t s = 0; s < network.species_count(); ++s) {
    const core::SpeciesId id{static_cast<core::SpeciesId::underlying_type>(s)};
    const std::string& name = network.species_name(id);
    if (name.size() < 2 || name.substr(name.size() - 2) != "_p") continue;
    const auto other =
        network.find_species(name.substr(0, name.size() - 2) + "_n");
    if (!other) continue;
    pos = id;
    neg = *other;
    break;
  }
  ASSERT_NE(pos, core::SpeciesId::invalid());
  // One reaction depositing into both rails manufactures matched garbage.
  network.add({}, {{pos, 1}, {neg, 1}}, core::RateCategory::kFast, 0.0,
              "corrupt.copair");
  const lint::LintReport report =
      lint::run_lint(input_for(design, "first_difference"));
  EXPECT_TRUE(report.has("LINT-RAIL-01")) << report.to_text();
}

TEST(LintCorruption, UnconservedRailPairWarnsDualRail) {
  tools::BuiltDesign design = build("first_difference");
  core::ReactionNetwork& network = *design.network;
  const core::SpeciesId pos = network.add_species("drift_p", 0.0);
  network.add_species("drift_n", 0.0);
  // drift_p grows monotonically, so no conservation law can cover it, and
  // the pair is not an input port (those are exempt).
  network.add({}, {{pos, 1}}, core::RateCategory::kSlow, 0.0,
              "corrupt.drift");
  const lint::LintReport report =
      lint::run_lint(input_for(design, "first_difference"));
  EXPECT_TRUE(report.has("LINT-RAIL-02")) << report.to_text();
}

TEST(LintCorruption, OrphanAndGhostSpeciesTripReachability) {
  tools::BuiltDesign design = build("counter");
  core::ReactionNetwork& network = *design.network;
  network.add_species("orphan", 1.0);  // in no reaction at all
  const core::SpeciesId ghost = network.add_species("ghost", 0.0);
  const core::SpeciesId ghost_out = network.add_species("ghost_out", 0.0);
  // ghost is never produced and starts at zero, so this can never fire.
  network.add({{ghost, 1}}, {{ghost_out, 1}}, core::RateCategory::kSlow, 0.0,
              "corrupt.ghost");
  const lint::LintReport report =
      lint::run_lint(input_for(design, "counter"));
  EXPECT_TRUE(report.has("LINT-DEAD-01")) << report.to_text();
  EXPECT_TRUE(report.has("LINT-DEAD-02")) << report.to_text();
  EXPECT_TRUE(report.has("LINT-STUCK-01")) << report.to_text();
}

TEST(LintCorruption, UndeclaredCrossLayerCouplingTripsIss) {
  tools::BuiltDesign design = build("cascade");
  ASSERT_NE(design.composition, nullptr);
  const auto& layers = design.composition->layers;
  ASSERT_GE(layers.size(), 2u);
  const core::SpeciesId a{static_cast<core::SpeciesId::underlying_type>(
      layers[0].first_species)};
  const core::SpeciesId b{static_cast<core::SpeciesId::underlying_type>(
      layers[1].first_species)};
  // A reaction touching both layers without a declared interface breaks
  // the retroactivity-free structure the ISS certificate relies on.
  design.network->add({{a, 1}}, {{b, 1}}, core::RateCategory::kSlow, 0.0,
                      "corrupt.sneak_path");
  const lint::LintReport report =
      lint::run_lint(input_for(design, "cascade"));
  EXPECT_TRUE(report.has("LINT-ISS-01")) << report.to_text();
  EXPECT_FALSE(report.has("LINT-ISS-00")) << report.to_text();
}

// --- plumbing: filters, errors, JSON --------------------------------------

TEST(Lint, UnknownCheckNameThrows) {
  const tools::BuiltDesign design = build("counter");
  lint::LintOptions options;
  options.checks = {"banana"};
  EXPECT_THROW(
      { (void)lint::run_lint(input_for(design, "counter"), options); },
      std::invalid_argument);
}

TEST(Lint, CheckFilterRunsOnlySelected) {
  const tools::BuiltDesign design = build("counter");
  lint::LintOptions options;
  options.checks = {"timescale"};
  const lint::LintReport report =
      lint::run_lint(input_for(design, "counter"), options);
  ASSERT_EQ(report.checks_run.size(), 1u);
  EXPECT_EQ(report.checks_run.front(), "timescale");
}

TEST(Lint, JsonReportCarriesSchemaKeys) {
  const tools::BuiltDesign design = build("cascade");
  const lint::LintReport report = lint::run_lint(input_for(design, "cascade"));
  const std::string json = report.to_json();
  for (const char* key :
       {"\"design\"", "\"checks_run\"", "\"checks_skipped\"", "\"errors\"",
        "\"warnings\"", "\"diagnostics\"", "\"severity\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
}

// --- layer 3: static-vs-dynamic cross-oracle ------------------------------

TEST(LintCrossOracle, HoldsOverSeedSweep) {
  const verify::CaseKind kinds[] = {
      verify::CaseKind::kSyncCircuit, verify::CaseKind::kDualRailCircuit,
      verify::CaseKind::kFsm, verify::CaseKind::kCounter};
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    for (const verify::CaseKind kind : kinds) {
      const verify::GeneratedCase c = verify::generate_case(kind, seed);
      const std::vector<verify::Violation> violations =
          verify::check_lint_cross(c);
      EXPECT_TRUE(violations.empty())
          << to_string(kind) << " seed " << seed << ": "
          << (violations.empty() ? std::string{} : violations.front().detail);
    }
  }
}

}  // namespace
