// The verification subsystem, verified: generator determinism, oracles on
// healthy and deliberately corrupted networks, and the shrinker's guarantee
// of a minimal reproducing network.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/builder.hpp"
#include "core/io.hpp"
#include "stress/fault.hpp"
#include "verify/generator.hpp"
#include "verify/oracles.hpp"
#include "verify/shrink.hpp"
#include "verify/verify.hpp"

namespace mrsc::verify {
namespace {

using core::ReactionNetwork;

/// Cheap settings for tests: short circuits, no ensembles.
VerifyOptions fast_options() {
  VerifyOptions options;
  options.generator.cycles = 2;
  options.differential = false;
  options.robustness = false;
  return options;
}

TEST(ParseKinds, EmptyMeansAllFive) {
  const auto kinds = parse_kinds("");
  ASSERT_EQ(kinds.size(), 5u);
  EXPECT_EQ(kinds[0], CaseKind::kRawNetwork);
  EXPECT_EQ(kinds[4], CaseKind::kCounter);
}

TEST(ParseKinds, SubsetAndOrderPreserved) {
  const auto kinds = parse_kinds("dual,raw");
  ASSERT_EQ(kinds.size(), 2u);
  EXPECT_EQ(kinds[0], CaseKind::kDualRailCircuit);
  EXPECT_EQ(kinds[1], CaseKind::kRawNetwork);
}

TEST(ParseKinds, UnknownKindThrows) {
  EXPECT_THROW((void)parse_kinds("sync,banana"), std::invalid_argument);
}

TEST(Generator, SameSeedSameNetwork) {
  for (const CaseKind kind :
       {CaseKind::kRawNetwork, CaseKind::kSyncCircuit,
        CaseKind::kDualRailCircuit, CaseKind::kFsm, CaseKind::kCounter}) {
    const GeneratedCase a = generate_case(kind, 11, {});
    const GeneratedCase b = generate_case(kind, 11, {});
    EXPECT_EQ(core::serialize_network(a.network()),
              core::serialize_network(b.network()))
        << "kind " << to_string(kind);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  const GeneratedCase a = generate_case(CaseKind::kSyncCircuit, 1, {});
  const GeneratedCase b = generate_case(CaseKind::kSyncCircuit, 2, {});
  EXPECT_NE(core::serialize_network(a.network()),
            core::serialize_network(b.network()));
}

TEST(Generator, KindsAreDifferentStreams) {
  // The per-kind salt must decorrelate the streams: the same seed used for
  // two kinds should not produce the same reaction count by construction.
  const GeneratedCase raw = generate_case(CaseKind::kRawNetwork, 7, {});
  const GeneratedCase fsm = generate_case(CaseKind::kFsm, 7, {});
  EXPECT_NE(core::serialize_network(raw.network()),
            core::serialize_network(fsm.network()));
}

TEST(CheckCase, HealthyCasesPassEveryOracle) {
  const VerifyOptions options = fast_options();
  for (const CaseKind kind :
       {CaseKind::kRawNetwork, CaseKind::kSyncCircuit,
        CaseKind::kDualRailCircuit, CaseKind::kFsm, CaseKind::kCounter}) {
    const GeneratedCase c = generate_case(kind, 5, options.generator);
    const auto violations = check_case(c, options);
    EXPECT_TRUE(violations.empty())
        << "kind " << to_string(kind) << ": " << violations.front().oracle
        << ": " << violations.front().detail;
  }
}

TEST(FaultInjection, IncrementsFirstProductStoichiometry) {
  ReactionNetwork net;
  core::NetworkBuilder b(net);
  b.species("A", 1.0);
  b.species("B", 0.0);
  b.reaction("A -> B", 1.0);
  const ReactionNetwork faulted =
      stress::with_stoichiometry_fault(net, core::ReactionId{0});
  ASSERT_EQ(faulted.reaction(core::ReactionId{0}).products().size(), 1u);
  EXPECT_EQ(faulted.reaction(core::ReactionId{0}).products()[0].stoich, 2u);
  // The original is untouched.
  EXPECT_EQ(net.reaction(core::ReactionId{0}).products()[0].stoich, 1u);
}

TEST(FaultInjection, SinkGainsItsReactantAsProduct) {
  ReactionNetwork net;
  core::NetworkBuilder b(net);
  b.species("A", 1.0);
  b.reaction("A -> 0", 1.0);
  const ReactionNetwork faulted =
      stress::with_stoichiometry_fault(net, core::ReactionId{0});
  ASSERT_EQ(faulted.reaction(core::ReactionId{0}).products().size(), 1u);
  EXPECT_EQ(faulted.reaction(core::ReactionId{0}).products()[0].species,
            core::SpeciesId{0});
}

/// The ISSUE's acceptance scenario: corrupt one clock hop reaction of a
/// generated synchronous circuit (token duplication — the molecular analogue
/// of a single defective gate) and require the oracles to flag it and the
/// shrinker to reduce it to a minimal repro.
TEST(FaultInjection, CorruptedClockIsCaughtAndShrunk) {
  const VerifyOptions options = fast_options();
  GeneratedCase c =
      generate_case(CaseKind::kSyncCircuit, 3, options.generator);

  const core::ReactionId target = stress::find_reaction_by_label(
      c.network(), "f_clk.hop.r2g.seed");
  ReactionNetwork faulted =
      stress::with_stoichiometry_fault(c.network(), target);
  std::get<SyncCase>(c.payload).network = std::move(faulted);

  const auto violations = check_case(c, options);
  ASSERT_FALSE(violations.empty());
  bool clock_flagged = false;
  for (const Violation& v : violations) {
    if (v.oracle == "clock_phase_token") clock_flagged = true;
  }
  EXPECT_TRUE(clock_flagged)
      << "first violation: " << violations.front().oracle << ": "
      << violations.front().detail;

  const auto shrunk = shrink_case(c, "clock_phase_token", options);
  ASSERT_TRUE(shrunk.has_value());
  EXPECT_TRUE(shrunk->reproduced);
  EXPECT_LT(shrunk->final_reactions, shrunk->original_reactions);
  // The corrupted hop must survive shrinking (dropping it would lose the
  // violation), and the repro must still be a valid, serializable network.
  bool kept_faulted_hop = false;
  for (std::size_t i = 0; i < shrunk->network.reaction_count(); ++i) {
    if (shrunk->network.reaction(
            core::ReactionId{static_cast<std::uint32_t>(i)}).label() ==
        "f_clk.hop.r2g.seed") {
      kept_faulted_hop = true;
    }
  }
  EXPECT_TRUE(kept_faulted_hop);
  EXPECT_FALSE(core::serialize_network(shrunk->network).empty());
}

TEST(Shrink, ReducesToTheOneGuiltyReaction) {
  // Ten independent decays; the predicate only cares about reaction 7.
  ReactionNetwork net;
  core::NetworkBuilder b(net);
  for (int i = 0; i < 10; ++i) {
    b.species("A" + std::to_string(i), 1.0);
    b.species("B" + std::to_string(i), 0.0);
    b.reaction("A" + std::to_string(i) + " -> B" + std::to_string(i), 1.0);
  }
  const std::string guilty = net.reaction(core::ReactionId{7}).label();
  auto violates = [&](const ReactionNetwork& candidate) {
    for (std::size_t i = 0; i < candidate.reaction_count(); ++i) {
      const auto& r =
          candidate.reaction(core::ReactionId{static_cast<std::uint32_t>(i)});
      if (r.reactants() == net.reaction(core::ReactionId{7}).reactants() &&
          r.products() == net.reaction(core::ReactionId{7}).products()) {
        return true;
      }
    }
    return false;
  };
  (void)guilty;
  const ShrinkResult result = shrink_network(net, violates, {});
  EXPECT_TRUE(result.reproduced);
  EXPECT_EQ(result.final_reactions, 1u);
  EXPECT_EQ(result.original_reactions, 10u);
}

TEST(Shrink, NonReproducingPredicateReportsItself) {
  ReactionNetwork net;
  core::NetworkBuilder b(net);
  b.species("A", 1.0);
  b.reaction("A -> A", 1.0);
  const ShrinkResult result =
      shrink_network(net, [](const ReactionNetwork&) { return false; }, {});
  EXPECT_FALSE(result.reproduced);
  EXPECT_EQ(result.final_reactions, result.original_reactions);
}

TEST(Shrink, PruneDropsOnlyUntouchedZeroSpecies) {
  ReactionNetwork net;
  core::NetworkBuilder b(net);
  b.species("used", 1.0);
  b.species("unused_zero", 0.0);
  b.species("unused_initial", 0.5);  // kept: nonzero initial affects laws
  b.reaction("used -> used", 1.0);
  const ReactionNetwork pruned = prune_unreferenced_species(net);
  EXPECT_EQ(pruned.species_count(), 2u);
  EXPECT_TRUE(pruned.find_species("used").has_value());
  EXPECT_TRUE(pruned.find_species("unused_initial").has_value());
  EXPECT_FALSE(pruned.find_species("unused_zero").has_value());
}

TEST(Oracles, SeriesMismatchNamesTheCycle) {
  const std::vector<double> actual = {1.0, 2.0, 9.0};
  const std::vector<double> expected = {1.0, 2.0, 3.0};
  const auto v =
      check_series_match("demo", actual, expected, SeriesTolerance{0.1, 0.1});
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->oracle, "demo");
  EXPECT_NE(v->detail.find("2"), std::string::npos);  // failing index
}

TEST(Oracles, MatchingSeriesPasses) {
  const std::vector<double> actual = {1.0, 2.001, 3.0};
  const std::vector<double> expected = {1.0, 2.0, 3.0};
  EXPECT_FALSE(check_series_match("demo", actual, expected,
                                  SeriesTolerance{0.01, 0.01})
                   .has_value());
}

TEST(RunFuzz, CleanSweepOverAllKinds) {
  VerifyOptions options = fast_options();
  options.seeds = 10;  // two per kind
  const FuzzReport report = run_fuzz(options);
  EXPECT_EQ(report.checked, 10u);
  EXPECT_EQ(report.failed, 0u) << describe(report.cases.front());
  for (const CaseResult& result : report.cases) {
    EXPECT_TRUE(result.violations.empty()) << describe(result);
  }
}

TEST(RunFuzz, ParallelSweepMatchesSerial) {
  VerifyOptions options = fast_options();
  options.seeds = 5;
  options.kinds = {CaseKind::kRawNetwork, CaseKind::kFsm};
  const FuzzReport serial = run_fuzz(options);
  options.threads = 4;
  const FuzzReport parallel = run_fuzz(options);
  ASSERT_EQ(serial.cases.size(), parallel.cases.size());
  for (std::size_t i = 0; i < serial.cases.size(); ++i) {
    EXPECT_EQ(serial.cases[i].seed, parallel.cases[i].seed);
    EXPECT_EQ(serial.cases[i].kind, parallel.cases[i].kind);
    EXPECT_EQ(serial.cases[i].violations.size(),
              parallel.cases[i].violations.size());
  }
}

}  // namespace
}  // namespace mrsc::verify
