#include "async/chain.hpp"

#include <gtest/gtest.h>

#include "sim/ode.hpp"
#include "sim/ssa.hpp"

namespace mrsc::async {
namespace {

using core::ReactionNetwork;

// A full transfer through n elements takes 3n+1 phases of a few slow time
// constants each; budget generously (runs stop changing once Y arrives).
double t_end_for(std::size_t elements) {
  return 40.0 * static_cast<double>(elements + 1);
}

class ChainLengthTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChainLengthTest, ValueArrivesAtOutput) {
  ReactionNetwork net;
  ChainSpec spec;
  spec.elements = GetParam();
  const ChainHandles handles = build_delay_chain(net, spec);
  net.set_initial(handles.input, 1.0);

  sim::OdeOptions options;
  options.t_end = t_end_for(spec.elements);
  const sim::OdeResult result = sim::simulate_ode(net, options);
  // The transfer is crisp but the final element's tail stalls once the
  // output (a red species) suppresses the red-absence indicator; ~1-2% of
  // the value remains in flight. That is inherent to the scheme.
  EXPECT_GT(result.trajectory.final_value(handles.output), 0.96);
  EXPECT_LT(result.trajectory.final_value(handles.output), 1.001);
  // Everything upstream has drained.
  EXPECT_LT(result.trajectory.final_value(handles.input), 0.01);
  for (std::size_t i = 0; i + 1 < spec.elements; ++i) {
    EXPECT_LT(result.trajectory.final_value(handles.red[i]), 0.02);
    EXPECT_LT(result.trajectory.final_value(handles.blue[i]), 0.02);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, ChainLengthTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(AsyncChain, PhasesAreOrdered) {
  // The green species of element 1 must peak before element 2's: the value
  // passes through them in sequence.
  ReactionNetwork net;
  ChainSpec spec;
  spec.elements = 2;
  const ChainHandles handles = build_delay_chain(net, spec);
  net.set_initial(handles.input, 1.0);

  sim::OdeOptions options;
  options.t_end = t_end_for(2);
  options.record_interval = 0.1;
  const sim::OdeResult result = sim::simulate_ode(net, options);

  auto peak_time = [&](core::SpeciesId id) {
    double best = -1.0;
    double best_t = 0.0;
    for (std::size_t k = 0; k < result.trajectory.sample_count(); ++k) {
      if (result.trajectory.value(k, id) > best) {
        best = result.trajectory.value(k, id);
        best_t = result.trajectory.time(k);
      }
    }
    return best_t;
  };
  const double order[] = {
      peak_time(handles.red[0]),  peak_time(handles.green[0]),
      peak_time(handles.blue[0]), peak_time(handles.red[1]),
      peak_time(handles.green[1]), peak_time(handles.blue[1])};
  for (std::size_t i = 0; i + 1 < std::size(order); ++i) {
    EXPECT_LT(order[i], order[i + 1]) << "stage " << i;
  }
}

TEST(AsyncChain, TransfersAreCrisp) {
  // Each stage should swing nearly rail to rail: its peak is close to the
  // full signal value.
  ReactionNetwork net;
  ChainSpec spec;
  spec.elements = 2;
  const ChainHandles handles = build_delay_chain(net, spec);
  net.set_initial(handles.input, 1.0);

  sim::OdeOptions options;
  options.t_end = t_end_for(2);
  options.record_interval = 0.1;
  const sim::OdeResult result = sim::simulate_ode(net, options);
  const core::SpeciesId stages[] = {handles.red[0], handles.green[0],
                                    handles.blue[0], handles.red[1],
                                    handles.green[1], handles.blue[1]};
  for (const core::SpeciesId stage : stages) {
    EXPECT_GT(result.trajectory.max_in_window(stage, 0.0, options.t_end),
              0.9);
  }
}

TEST(AsyncChain, FeedbackIsEssentialForCrispOrderedTransfer) {
  // Ablation of reactions (2)-(3): without the positive-feedback dimers,
  // partial products populate every color simultaneously, all three absence
  // indicators are suppressed at once, and the phase discipline collapses —
  // the value smears across the stages instead of moving in crisp steps.
  ReactionNetwork net;
  ChainSpec spec;
  spec.elements = 1;
  spec.feedback = false;
  const ChainHandles handles = build_delay_chain(net, spec);
  net.set_initial(handles.input, 1.0);
  sim::OdeOptions options;
  options.t_end = 400.0;
  options.record_interval = 0.5;
  const sim::OdeResult result = sim::simulate_ode(net, options);
  // Far from delivered by the time the feedback version has long finished
  // (the with-feedback chain delivers > 0.96 by t ~ 40; see other tests).
  EXPECT_LT(result.trajectory.final_value(handles.output), 0.5);
  // Phase exclusivity lost: at some instant at least three stages hold more
  // than 10% of the signal simultaneously.
  bool smeared = false;
  for (std::size_t k = 0; k < result.trajectory.sample_count(); ++k) {
    int occupied = 0;
    for (const core::SpeciesId stage :
         {handles.red[0], handles.green[0], handles.blue[0],
          handles.output}) {
      if (result.trajectory.value(k, stage) > 0.1) ++occupied;
    }
    if (occupied >= 3) smeared = true;
  }
  EXPECT_TRUE(smeared);
}

TEST(AsyncChain, RateRatioRobustness) {
  // The transfer characteristics are claimed independent of specific rates:
  // check delivery across two decades of k_fast/k_slow.
  for (const double ratio : {100.0, 1000.0, 10000.0}) {
    ReactionNetwork net;
    ChainSpec spec;
    spec.elements = 2;
    const ChainHandles handles = build_delay_chain(net, spec);
    net.set_initial(handles.input, 1.0);
    net.set_rate_policy(core::RatePolicy{1.0, ratio});
    sim::OdeOptions options;
    options.t_end = t_end_for(2);
    const sim::OdeResult result = sim::simulate_ode(net, options);
    EXPECT_GT(result.trajectory.final_value(handles.output), 0.92)
        << "ratio " << ratio;
  }
}

TEST(AsyncChain, DifferentAmplitudesPreserved) {
  // The feedback flux scales with the square of the signal value, so small
  // amplitudes move more slowly and stall with a slightly larger tail.
  for (const double amplitude : {0.5, 1.0, 2.0}) {
    ReactionNetwork net;
    ChainSpec spec;
    spec.elements = 2;
    const ChainHandles handles = build_delay_chain(net, spec);
    net.set_initial(handles.input, amplitude);
    sim::OdeOptions options;
    options.t_end = t_end_for(2) * 3.0;
    const sim::OdeResult result = sim::simulate_ode(net, options);
    EXPECT_NEAR(result.trajectory.final_value(handles.output), amplitude,
                0.06 * amplitude + 0.01)
        << "amplitude " << amplitude;
  }
}

TEST(AsyncChain, StochasticTransferDeliversMostMolecules) {
  ReactionNetwork net;
  ChainSpec spec;
  spec.elements = 2;
  const ChainHandles handles = build_delay_chain(net, spec);
  net.set_initial(handles.input, 1.0);
  net.set_rate_policy(core::RatePolicy{1.0, 200.0});

  sim::SsaOptions options;
  options.t_end = t_end_for(2);
  options.omega = 200.0;  // 200 molecules of signal
  options.seed = 3;
  const sim::SsaResult result = simulate_ssa(net, options);
  EXPECT_GT(result.final_counts[handles.output.index()], 180);
}

TEST(AsyncChain, ZeroElementsRejected) {
  ReactionNetwork net;
  ChainSpec spec;
  spec.elements = 0;
  EXPECT_THROW((void)build_delay_chain(net, spec), std::invalid_argument);
}

TEST(AsyncChain, PrefixAllowsMultipleChains) {
  ReactionNetwork net;
  ChainSpec first;
  first.prefix = "c1";
  ChainSpec second;
  second.prefix = "c2";
  EXPECT_NO_THROW(build_delay_chain(net, first));
  EXPECT_NO_THROW(build_delay_chain(net, second));
}

}  // namespace
}  // namespace mrsc::async
