#include "sim/mass_action.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/builder.hpp"
#include "util/rng.hpp"

namespace mrsc::sim {
namespace {

using core::NetworkBuilder;
using core::RateCategory;
using core::ReactionNetwork;
using core::SpeciesId;

TEST(MassActionSystem, FluxOfUnimolecular) {
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.reaction("A -> B", 2.0);
  const MassActionSystem system(net);
  const std::vector<double> x = {3.0, 0.0};
  EXPECT_DOUBLE_EQ(system.flux(0, x), 6.0);
}

TEST(MassActionSystem, FluxOfBimolecularAndSecondOrder) {
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.reaction("A + B -> C", 2.0);
  b.reaction("2 A -> C", 3.0);
  const MassActionSystem system(net);
  const std::vector<double> x = {2.0, 5.0, 0.0};
  EXPECT_DOUBLE_EQ(system.flux(0, x), 2.0 * 2.0 * 5.0);
  EXPECT_DOUBLE_EQ(system.flux(1, x), 3.0 * 2.0 * 2.0);
}

TEST(MassActionSystem, FluxOfZeroOrder) {
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.reaction("0 -> A", 0.7);
  const MassActionSystem system(net);
  const std::vector<double> x = {0.0};
  EXPECT_DOUBLE_EQ(system.flux(0, x), 0.7);
}

TEST(MassActionSystem, RhsOfDecay) {
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.reaction("A -> B", 2.0);
  const MassActionSystem system(net);
  const std::vector<double> x = {3.0, 1.0};
  std::vector<double> dxdt(2);
  system.rhs(x, dxdt);
  EXPECT_DOUBLE_EQ(dxdt[0], -6.0);
  EXPECT_DOUBLE_EQ(dxdt[1], 6.0);
}

TEST(MassActionSystem, RhsMergesDuplicateTerms) {
  // A + A -> B written as two single terms must behave like 2A -> B.
  ReactionNetwork net;
  const SpeciesId a = net.add_species("A");
  const SpeciesId bb = net.add_species("B");
  net.add({{a, 1}, {a, 1}}, {{bb, 1}}, RateCategory::kCustom, 1.0);
  const MassActionSystem system(net);
  const std::vector<double> x = {3.0, 0.0};
  std::vector<double> dxdt(2);
  system.rhs(x, dxdt);
  EXPECT_DOUBLE_EQ(dxdt[0], -18.0);  // -2 * k * A^2
  EXPECT_DOUBLE_EQ(dxdt[1], 9.0);
}

TEST(MassActionSystem, CatalystHasZeroNetChange) {
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.reaction("C + A -> C + B", 1.0);
  const MassActionSystem system(net);
  const std::vector<double> x = {2.0, 3.0, 0.0};  // C, A, B
  std::vector<double> dxdt(3);
  system.rhs(x, dxdt);
  EXPECT_DOUBLE_EQ(dxdt[0], 0.0);
  EXPECT_DOUBLE_EQ(dxdt[1], -6.0);
  EXPECT_DOUBLE_EQ(dxdt[2], 6.0);
}

TEST(MassActionSystem, UsesEffectivePolicyRates) {
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.reaction("A -> B", RateCategory::kFast);
  net.set_rate_policy(core::RatePolicy{1.0, 123.0});
  const MassActionSystem system(net);
  const std::vector<double> x = {1.0, 0.0};
  EXPECT_DOUBLE_EQ(system.flux(0, x), 123.0);
}

// Property: the analytic Jacobian matches central finite differences on
// randomly generated networks.
class JacobianTest : public ::testing::TestWithParam<int> {};

TEST_P(JacobianTest, MatchesFiniteDifferences) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 5);
  ReactionNetwork net;
  const std::size_t n_species = 3 + rng.uniform_below(4);
  for (std::size_t i = 0; i < n_species; ++i) {
    net.add_species("S" + std::to_string(i));
  }
  const std::size_t n_reactions = 4 + rng.uniform_below(6);
  for (std::size_t j = 0; j < n_reactions; ++j) {
    std::vector<core::Term> reactants;
    const std::size_t order = rng.uniform_below(3);  // 0..2
    for (std::size_t o = 0; o < order; ++o) {
      reactants.push_back(
          {SpeciesId{static_cast<SpeciesId::underlying_type>(
               rng.uniform_below(n_species))},
           static_cast<std::uint32_t>(1 + rng.uniform_below(2))});
    }
    std::vector<core::Term> products = {
        {SpeciesId{static_cast<SpeciesId::underlying_type>(
             rng.uniform_below(n_species))},
         1}};
    if (reactants.empty() && products.empty()) continue;
    if (reactants.empty()) {
      net.add({}, std::move(products), RateCategory::kCustom,
              rng.uniform(0.1, 5.0));
    } else {
      net.add(std::move(reactants), std::move(products),
              RateCategory::kCustom, rng.uniform(0.1, 5.0));
    }
  }
  const MassActionSystem system(net);
  std::vector<double> x(n_species);
  for (double& v : x) v = rng.uniform(0.1, 2.0);

  util::Matrix jac;
  system.jacobian(x, jac);

  const double h = 1e-6;
  std::vector<double> plus(n_species), minus(n_species);
  for (std::size_t col = 0; col < n_species; ++col) {
    std::vector<double> xp = x, xm = x;
    xp[col] += h;
    xm[col] -= h;
    system.rhs(xp, plus);
    system.rhs(xm, minus);
    for (std::size_t row = 0; row < n_species; ++row) {
      const double fd = (plus[row] - minus[row]) / (2.0 * h);
      EXPECT_NEAR(jac(row, col), fd, 1e-5)
          << "d f[" << row << "] / d x[" << col << "]";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JacobianTest, ::testing::Range(0, 10));

TEST(MassActionSystem, PropensityUnimolecular) {
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.reaction("A -> B", 2.0);
  const MassActionSystem system(net);
  const std::vector<std::int64_t> n = {5, 0};
  // Unimolecular: a = k * n_A (independent of omega).
  EXPECT_DOUBLE_EQ(system.propensity(0, n, 100.0), 10.0);
}

TEST(MassActionSystem, PropensityBimolecularScalesWithVolume) {
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.reaction("A + B -> C", 2.0);
  const MassActionSystem system(net);
  const std::vector<std::int64_t> n = {5, 4, 0};
  EXPECT_DOUBLE_EQ(system.propensity(0, n, 10.0), 2.0 * 5.0 * 4.0 / 10.0);
}

TEST(MassActionSystem, PropensityHomodimerCombinatorics) {
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.reaction("2 A -> B", 3.0);
  const MassActionSystem system(net);
  const std::vector<std::int64_t> n = {5, 0};
  // falling factorial: 5 * 4.
  EXPECT_DOUBLE_EQ(system.propensity(0, n, 10.0), 3.0 * 5.0 * 4.0 / 10.0);
  const std::vector<std::int64_t> one = {1, 0};
  EXPECT_DOUBLE_EQ(system.propensity(0, one, 10.0), 0.0);
}

TEST(MassActionSystem, PropensityZeroOrder) {
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.reaction("0 -> A", 0.5);
  const MassActionSystem system(net);
  const std::vector<std::int64_t> n = {0};
  EXPECT_DOUBLE_EQ(system.propensity(0, n, 20.0), 0.5 * 20.0);
}

TEST(MassActionSystem, ApplyFiring) {
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.reaction("2 A -> B", 1.0);
  const MassActionSystem system(net);
  std::vector<std::int64_t> n = {5, 1};
  system.apply(0, n);
  EXPECT_EQ(n[0], 3);
  EXPECT_EQ(n[1], 2);
}

TEST(MassActionSystem, DependencyGraph) {
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.reaction("A -> B", 1.0);   // r0 changes A, B
  b.reaction("B -> C", 1.0);   // r1 reads B
  b.reaction("C -> A", 1.0);   // r2 reads C
  const MassActionSystem system(net);
  // Firing r0 changes A (read by r0) and B (read by r1).
  const auto& affected = system.affected_reactions(0);
  EXPECT_EQ(affected, (std::vector<std::uint32_t>{0, 1}));
  // Firing r1 changes B (r1) and C (r2).
  EXPECT_EQ(system.affected_reactions(1), (std::vector<std::uint32_t>{1, 2}));
}

}  // namespace
}  // namespace mrsc::sim
