// Tests for the simulation service: JSON layer, result cache, canonical
// keys, latency histograms, dispatcher determinism, and full client/server
// round trips (byte-identical cold/cached/restart responses, deterministic
// overload rejection, concurrent submitters, cooperative shutdown).
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "serve/cache.hpp"
#include "serve/dispatcher.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/stats.hpp"

namespace mrsc::serve {
namespace {

// ---------------------------------------------------------------- JSON --

TEST(ServeJson, ParseDumpRoundTripIsByteStable) {
  const std::string text =
      R"({"a":1,"b":"two","c":[true,false,null],"d":{"nested":-2.5},"e":""})";
  const json::Value value = json::parse(text);
  EXPECT_EQ(value.dump(), text);
  // dump(parse(dump(x))) == dump(x): one serialization path, fixed point.
  EXPECT_EQ(json::parse(value.dump()).dump(), text);
}

TEST(ServeJson, ObjectsPreserveInsertionOrder) {
  const json::Value value = json::parse(R"({"z":1,"a":2,"m":3})");
  EXPECT_EQ(value.dump(), R"({"z":1,"a":2,"m":3})");
}

TEST(ServeJson, NumbersUseIntegerShortening) {
  EXPECT_EQ(json::number_to_string(42.0), "42");
  EXPECT_EQ(json::number_to_string(-7.0), "-7");
  EXPECT_EQ(json::number_to_string(0.5), "0.5");
  // Seeds survive a parse -> dump round trip textually.
  EXPECT_EQ(json::parse("123456789").dump(), "123456789");
}

TEST(ServeJson, StringEscapes) {
  const json::Value value = json::parse(R"({"s":"a\"b\\c\nA"})");
  EXPECT_EQ(value.get_string("s", ""), "a\"b\\c\nA");
  EXPECT_EQ(json::quote("tab\there"), R"("tab\there")");
}

TEST(ServeJson, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)json::parse(""), std::invalid_argument);
  EXPECT_THROW((void)json::parse("{"), std::invalid_argument);
  EXPECT_THROW((void)json::parse("{} trailing"), std::invalid_argument);
  EXPECT_THROW((void)json::parse(R"({"a":1e})"), std::invalid_argument);
  EXPECT_THROW((void)json::parse("[1,2,"), std::invalid_argument);
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  EXPECT_THROW((void)json::parse(deep), std::invalid_argument);
}

TEST(ServeJson, TypedAccessorsThrowOnWrongType) {
  const json::Value value = json::parse(R"({"n":1,"s":"x","b":true})");
  EXPECT_EQ(value.get_number("n", 0.0), 1.0);
  EXPECT_EQ(value.get_string("missing", "fallback"), "fallback");
  EXPECT_THROW((void)value.get_string("n", ""), std::invalid_argument);
  EXPECT_THROW((void)value.get_number("s", 0.0), std::invalid_argument);
  EXPECT_THROW((void)value.get_bool("n", false), std::invalid_argument);
}

// ----------------------------------------------------------- histogram --

TEST(ServeStats, HistogramPercentilesWithinBucketTolerance) {
  LatencyHistogram histogram;
  for (int i = 1; i <= 1000; ++i) {
    histogram.record(static_cast<double>(i) * 1e-3);  // 1ms .. 1000ms
  }
  EXPECT_EQ(histogram.count(), 1000u);
  EXPECT_DOUBLE_EQ(histogram.max_seconds(), 1.0);
  // Log2 buckets, 4 per octave: estimates must land within ~19% relative.
  EXPECT_NEAR(histogram.percentile(0.50), 0.500, 0.500 * 0.20);
  EXPECT_NEAR(histogram.percentile(0.90), 0.900, 0.900 * 0.20);
  EXPECT_NEAR(histogram.percentile(0.99), 0.990, 0.990 * 0.20);
}

TEST(ServeStats, EmptyHistogramReportsZero) {
  const LatencyHistogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.percentile(0.5), 0.0);
  EXPECT_EQ(histogram.max_seconds(), 0.0);
}

// --------------------------------------------------------------- cache --

TEST(ServeCache, CountsHitsAndMisses) {
  ResultCache cache(4, 1 << 20);
  EXPECT_FALSE(cache.get("k").has_value());
  cache.put("k", "v");
  const auto hit = cache.get("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "v");
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(ServeCache, EvictsLeastRecentlyUsedByEntryCount) {
  ResultCache cache(2, 1 << 20);
  cache.put("a", "1");
  cache.put("b", "2");
  ASSERT_TRUE(cache.get("a").has_value());  // refresh "a": "b" is now LRU
  cache.put("c", "3");                      // evicts "b"
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_TRUE(cache.get("c").has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ServeCache, EvictsByTotalBytes) {
  ResultCache cache(100, 64);
  cache.put("a", std::string(30, 'x'));
  cache.put("b", std::string(30, 'y'));
  cache.put("c", std::string(30, 'z'));  // pushes bytes past 64: "a" goes
  EXPECT_FALSE(cache.get("a").has_value());
  EXPECT_TRUE(cache.get("b").has_value());
  EXPECT_TRUE(cache.get("c").has_value());
  EXPECT_LE(cache.stats().bytes, 64u + 2u);  // keys excluded from the bound
}

TEST(ServeCache, OversizedValueIsNotCached) {
  ResultCache cache(10, 16);
  cache.put("big", std::string(64, 'x'));
  EXPECT_FALSE(cache.get("big").has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ServeCache, ZeroCapacityDisablesCaching) {
  ResultCache cache(0, 1 << 20);
  cache.put("k", "v");
  EXPECT_FALSE(cache.get("k").has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

// ------------------------------------------------------ canonical keys --

json::Value job_json(const std::string& body) {
  return json::parse(R"({"op":"job",)" + body + "}");
}

TEST(ServeDispatcher, OmittedFieldsShareTheDefaultKey) {
  const JobRequest terse = parse_job(job_json(R"("kind":"sim")"));
  const JobRequest spelled = parse_job(job_json(
      R"("kind":"sim","design":"counter","seed":1,"opt":0,"method":"nrm",)"
      R"("t_end":5,"omega":200)"));
  EXPECT_EQ(canonical_key(terse), canonical_key(spelled));
}

TEST(ServeDispatcher, ResultDeterminingFieldsChangeTheKey) {
  const std::string base = canonical_key(parse_job(job_json(R"("kind":"sim")")));
  EXPECT_NE(base, canonical_key(parse_job(job_json(R"("kind":"sim","seed":2)"))));
  EXPECT_NE(base, canonical_key(parse_job(job_json(R"("kind":"sim","opt":1)"))));
  EXPECT_NE(base, canonical_key(parse_job(
                      job_json(R"("kind":"sim","method":"tau")"))));
  EXPECT_NE(base, canonical_key(parse_job(
                      job_json(R"("kind":"sim","design":"delay")"))));
  EXPECT_NE(base, canonical_key(parse_job(job_json(R"("kind":"lint")"))));
}

TEST(ServeDispatcher, DeadlineIsNotPartOfTheKey) {
  const std::string base = canonical_key(parse_job(job_json(R"("kind":"sim")")));
  EXPECT_EQ(base, canonical_key(parse_job(
                      job_json(R"("kind":"sim","deadline_s":120)"))));
}

TEST(ServeDispatcher, ParseJobRejectsBadRequests) {
  EXPECT_THROW((void)parse_job(job_json(R"("kind":"banana")")),
               std::invalid_argument);
  EXPECT_THROW((void)parse_job(job_json(R"("kind":"sim","method":"euler")")),
               std::invalid_argument);
  EXPECT_THROW((void)parse_job(job_json(R"("kind":"sim","t_end":1e9)")),
               std::invalid_argument);
  EXPECT_THROW((void)parse_job(job_json(R"("kind":"sim","seed":"one")")),
               std::invalid_argument);
  EXPECT_THROW((void)parse_job(job_json(R"("kind":"sim","opt":3)")),
               std::invalid_argument);
  EXPECT_THROW((void)parse_job(job_json(R"("kind":"verify","seeds":0)")),
               std::invalid_argument);
}

TEST(ServeDispatcher, ScenarioSpecsAreCanonicalizedInTheKey) {
  // Two spellings of the same generator call share one cache key.
  const JobRequest spaced =
      parse_job(job_json(R"js("kind":"sim","design":"counter( 2 )")js"));
  const JobRequest tight =
      parse_job(job_json(R"js("kind":"sim","design":"counter(2)")js"));
  EXPECT_EQ(canonical_key(spaced), canonical_key(tight));
  // Fixed names canonicalize to themselves: pre-registry keys are stable.
  const JobRequest fixed =
      parse_job(job_json(R"("kind":"sim","design":"counter")"));
  EXPECT_NE(canonical_key(fixed).find("|design=counter|"),
            std::string::npos);
  // Bad specs are parse errors, not run failures.
  EXPECT_THROW(
      (void)parse_job(job_json(R"("kind":"sim","design":"banana")")),
      std::invalid_argument);
  EXPECT_THROW(
      (void)parse_job(
          job_json(R"js("kind":"lint","design":"counter(99)")js")),
      std::invalid_argument);
  EXPECT_THROW(
      (void)parse_job(
          job_json(R"js("kind":"sim","design":"counter(2,3)")js")),
      std::invalid_argument);
}

// ------------------------------------------------- dispatcher directly --

TEST(ServeDispatcher, SimJobIsDeterministic) {
  const JobRequest job = parse_job(
      job_json(R"("kind":"sim","design":"counter","t_end":2,"omega":100)"));
  const DispatchResult first = run_job(job, {});
  const DispatchResult second = run_job(job, {});
  EXPECT_TRUE(first.ok);
  EXPECT_TRUE(first.cacheable);
  EXPECT_EQ(first.payload, second.payload);
  EXPECT_NE(first.payload.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(first.payload.find("\"final\""), std::string::npos);
}

TEST(ServeDispatcher, SeedChangesTheSimPayload) {
  const DispatchResult seed1 = run_job(
      parse_job(job_json(
          R"("kind":"sim","design":"counter","t_end":2,"omega":100,"seed":1)")),
      {});
  const DispatchResult seed2 = run_job(
      parse_job(job_json(
          R"("kind":"sim","design":"counter","t_end":2,"omega":100,"seed":2)")),
      {});
  ASSERT_TRUE(seed1.ok);
  ASSERT_TRUE(seed2.ok);
  EXPECT_NE(seed1.payload, seed2.payload);
}

TEST(ServeDispatcher, LintJobPayloadIsCompactJson) {
  const DispatchResult result = run_job(
      parse_job(job_json(R"("kind":"lint","design":"counter","opt":1)")), {});
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(result.cacheable);
  // Re-serialized through the service's single dump path: no pretty-print
  // newlines may survive.
  EXPECT_EQ(result.payload.find('\n'), std::string::npos);
  const json::Value parsed = json::parse(result.payload);
  EXPECT_EQ(parsed.get_string("status", ""), "ok");
  ASSERT_NE(parsed.find("result"), nullptr);
  ASSERT_NE(parsed.find("result")->find("report"), nullptr);
  EXPECT_NE(parsed.find("result")->find("report")->find("checks_run"),
            nullptr);
}

TEST(ServeDispatcher, CanonicalResponses) {
  EXPECT_EQ(overload_response(),
            R"({"status":"rejected","reason":"overload"})");
  const json::Value error = json::parse(error_response("boom"));
  EXPECT_EQ(error.get_string("status", ""), "error");
  EXPECT_EQ(error.get_string("error", ""), "boom");
}

// ------------------------------------------------------- client/server --

struct ServerFixture {
  explicit ServerFixture(ServerOptions options = {}) {
    if (options.workers == 0) options.workers = 2;
    server = std::make_unique<Server>(options);
    server->start();
  }
  json::Value request(const std::string& payload) {
    Client client("127.0.0.1", server->port());
    return client.request(payload);
  }
  std::string request_raw(const std::string& payload) {
    Client client("127.0.0.1", server->port());
    return client.request_raw(payload);
  }
  double stat(const char* section, const char* field) {
    const json::Value stats = request(R"({"op":"stats"})");
    const json::Value* group = stats.find(section);
    if (group == nullptr) return -1.0;
    const json::Value* value = group->find(field);
    return value == nullptr ? -1.0 : value->as_number();
  }
  std::unique_ptr<Server> server;
};

constexpr const char* kSimRequest =
    R"({"op":"job","kind":"sim","design":"counter","t_end":2,"omega":100})";

TEST(ServeServer, PingHealthAndStatsSchema) {
  ServerFixture fixture;
  EXPECT_EQ(fixture.request_raw(R"({"op":"ping"})"),
            R"({"status":"ok","op":"ping"})");
  const json::Value health = fixture.request(R"({"op":"health"})");
  EXPECT_EQ(health.get_string("status", ""), "ok");
  EXPECT_TRUE(health.get_bool("accepting", false));
  const json::Value stats = fixture.request(R"({"op":"stats"})");
  for (const char* section : {"queue", "cache", "requests", "latency"}) {
    EXPECT_NE(stats.find(section), nullptr) << section;
  }
  EXPECT_NE(stats.find("latency")->find("sim"), nullptr);
  EXPECT_NE(stats.find("latency")->find("sim")->find("p99_ms"), nullptr);
}

TEST(ServeServer, ColdCachedAndRestartResponsesAreByteIdentical) {
  std::string cold;
  std::string cached;
  {
    ServerFixture fixture;
    cold = fixture.request_raw(kSimRequest);
    cached = fixture.request_raw(kSimRequest);
    EXPECT_EQ(cold, cached) << "cache hit must replay the cold bytes";
    EXPECT_GE(fixture.stat("cache", "hits"), 1.0);
    fixture.server->stop();
  }
  // A fresh server (fresh cache, fresh port) must produce the same bytes:
  // nothing volatile may leak into the payload.
  ServerFixture restarted;
  EXPECT_EQ(restarted.request_raw(kSimRequest), cold);
  const json::Value parsed = json::parse(cold);
  EXPECT_EQ(parsed.get_string("status", ""), "ok");
  EXPECT_EQ(parsed.get_string("kind", ""), "sim");
}

TEST(ServeServer, ScenarioJobColdCachedAndRestartAreByteIdentical) {
  constexpr const char* kScenarioRequest =
      R"js({"op":"job","kind":"sim","design":"counter(2)","t_end":2,"omega":100})js";
  std::string cold;
  {
    ServerFixture fixture;
    cold = fixture.request_raw(kScenarioRequest);
    const std::string cached = fixture.request_raw(kScenarioRequest);
    EXPECT_EQ(cold, cached) << "cache hit must replay the cold bytes";
    // A differently spelled spec canonicalizes to the same key and replays
    // the same bytes from the cache.
    const std::string spaced = fixture.request_raw(
        R"js({"op":"job","kind":"sim","design":"counter( 2 )","t_end":2,"omega":100})js");
    EXPECT_EQ(cold, spaced);
    EXPECT_GE(fixture.stat("cache", "hits"), 2.0);
    fixture.server->stop();
  }
  ServerFixture restarted;
  EXPECT_EQ(restarted.request_raw(kScenarioRequest), cold);
  const json::Value parsed = json::parse(cold);
  EXPECT_EQ(parsed.get_string("status", ""), "ok");
  EXPECT_NE(parsed.get_string("key", "").find("design=counter(2)"),
            std::string::npos);
}

TEST(ServeServer, ChangedParametersMissTheCache) {
  ServerFixture fixture;
  const std::string base = fixture.request_raw(kSimRequest);
  const std::string seed2 = fixture.request_raw(
      R"({"op":"job","kind":"sim","design":"counter","t_end":2,"omega":100,"seed":2})");
  const std::string opt1 = fixture.request_raw(
      R"({"op":"job","kind":"sim","design":"counter","t_end":2,"omega":100,"opt":1})");
  EXPECT_NE(base, seed2);
  EXPECT_NE(base, opt1);
  EXPECT_EQ(fixture.stat("cache", "hits"), 0.0);
  EXPECT_EQ(fixture.stat("cache", "misses"), 3.0);
}

TEST(ServeServer, VerifyAndStressJobsRoundTrip) {
  ServerFixture fixture;
  const json::Value verify = fixture.request(
      R"({"op":"job","kind":"verify","seeds":1,"kinds":"counter"})");
  EXPECT_EQ(verify.get_string("status", ""), "ok");
  const json::Value stress = fixture.request(
      R"({"op":"job","kind":"stress","design":"counter",)"
      R"("intensities":[0.02],"trials":1})");
  EXPECT_EQ(stress.get_string("status", ""), "ok");
}

TEST(ServeServer, BadRequestsGetErrorResponsesAndAreCounted) {
  ServerFixture fixture;
  EXPECT_EQ(fixture.request("not json at all").get_string("status", ""),
            "error");
  EXPECT_EQ(fixture.request(R"({"op":"banana"})").get_string("status", ""),
            "error");
  EXPECT_EQ(fixture
                .request(R"({"op":"job","kind":"sim","method":"banana"})")
                .get_string("status", ""),
            "error");
  EXPECT_EQ(fixture.stat("requests", "protocol_errors"), 3.0);
}

TEST(ServeServer, OverloadRejectionIsDeterministic) {
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 0;  // admission bound: exactly one job in flight
  ServerFixture fixture(options);

  std::thread sleeper([&] {
    // Occupies the only worker slot; never cached, so this is repeatable.
    Client client("127.0.0.1", fixture.server->port());
    (void)client.request_raw(R"({"op":"job","kind":"sleep","ms":1500})");
  });
  // Wait until the sleep job is admitted before probing.
  for (int i = 0; i < 200 && fixture.stat("queue", "in_flight") < 1.0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(fixture.stat("queue", "in_flight"), 1.0);

  const std::string rejected = fixture.request_raw(kSimRequest);
  EXPECT_EQ(rejected, R"({"status":"rejected","reason":"overload"})");
  EXPECT_GE(fixture.stat("requests", "overload_rejected"), 1.0);
  sleeper.join();

  // Capacity freed: the same request now succeeds.
  EXPECT_EQ(json::parse(fixture.request_raw(kSimRequest))
                .get_string("status", ""),
            "ok");
}

TEST(ServeServer, ConcurrentSubmittersNeverDeadlock) {
  ServerOptions options;
  options.workers = 2;
  options.queue_capacity = 2;
  ServerFixture fixture(options);

  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 6;
  std::atomic<int> ok{0};
  std::atomic<int> overload{0};
  std::atomic<int> other{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Client client("127.0.0.1", fixture.server->port());
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const std::string request =
            R"({"op":"job","kind":"sim","design":"counter","t_end":1,)"
            R"("omega":100,"seed":)" +
            std::to_string(t) + "}";
        const std::string status =
            json::parse(client.request_raw(request)).get_string("status", "");
        if (status == "ok") {
          ++ok;
        } else if (status == "rejected") {
          ++overload;
        } else {
          ++other;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  // Every request got a response; under pressure the only legal non-ok
  // answer is the deterministic overload rejection.
  EXPECT_EQ(ok.load() + overload.load(), kThreads * kRequestsPerThread);
  EXPECT_EQ(other.load(), 0);
  EXPECT_GE(ok.load(), kThreads);  // retries aside, plenty must succeed
}

// --------------------------------------------- framing-fault regressions --
//
// A peer that violates the framing — closes mid-header, closes mid-payload,
// or sends a garbage length prefix — must cost exactly its own connection:
// counted in requests.connection_errors, never tearing down the accept
// loop. Each case is followed by a successful ping on a fresh connection.

void send_raw_and_close(std::uint16_t port, const std::string& bytes) {
  const Socket socket = connect_to("127.0.0.1", port);
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(socket.fd(), bytes.data() + sent,
                             bytes.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }
  // Socket closes on scope exit: the server sees EOF wherever we left it.
}

double wait_for_stat_at_least(ServerFixture& fixture, const char* section,
                              const char* field, double target) {
  // Connection teardown is handled on the connection's own thread; give the
  // counter a moment to land.
  double value = -1.0;
  for (int i = 0; i < 200; ++i) {
    value = fixture.stat(section, field);
    if (value >= target) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return value;
}

TEST(ServeServer, TruncatedFramesAreCleanPerConnectionErrors) {
  ServerFixture fixture;

  // Case 1: half a length header, then close.
  send_raw_and_close(fixture.server->port(), std::string("\x00\x00", 2));
  // Case 2: a full header promising 100 bytes, 10 delivered, then close.
  std::string mid_payload("\x00\x00\x00\x64", 4);
  mid_payload += "0123456789";
  send_raw_and_close(fixture.server->port(), mid_payload);
  // Case 3: a garbage length prefix far past kMaxFrameBytes.
  send_raw_and_close(fixture.server->port(),
                     std::string("\xFF\xFF\xFF\xFF", 4));

  EXPECT_GE(wait_for_stat_at_least(fixture, "requests", "connection_errors",
                                   3.0),
            3.0);
  // The accept loop survived all three: a fresh connection works.
  EXPECT_EQ(fixture.request_raw(R"({"op":"ping"})"),
            R"({"status":"ok","op":"ping"})");
  EXPECT_TRUE(fixture.request(R"({"op":"health"})")
                  .get_bool("accepting", false));
}

// ------------------------------------------------------- catalog / drain --

TEST(ServeServer, CatalogOpMatchesTheLocalRegistryByteForByte) {
  ServerFixture fixture;
  const std::string over_the_wire = fixture.request_raw(R"({"op":"catalog"})");
  EXPECT_EQ(over_the_wire, catalog_response());
  EXPECT_EQ(fixture.request_raw(R"({"op":"catalog"})"), over_the_wire);
  const json::Value parsed = json::parse(over_the_wire);
  EXPECT_EQ(parsed.get_string("status", ""), "ok");
  ASSERT_NE(parsed.find("fixed"), nullptr);
  ASSERT_NE(parsed.find("generators"), nullptr);
  ASSERT_NE(parsed.find("smoke"), nullptr);
  EXPECT_FALSE(parsed.find("fixed")->as_array().empty());
  EXPECT_FALSE(parsed.find("smoke")->as_array().empty());
}

TEST(ServeServer, DrainShedsJobsButKeepsIntrospectionAlive) {
  ServerFixture fixture;
  EXPECT_EQ(fixture.request_raw(R"({"op":"drain"})"),
            R"({"status":"ok","op":"drain","draining":true})");
  // Drain is one-way and idempotent.
  EXPECT_EQ(fixture.request_raw(R"({"op":"drain"})"),
            R"({"status":"ok","op":"drain","draining":true})");

  EXPECT_EQ(fixture.request_raw(kSimRequest), draining_response());
  EXPECT_GE(fixture.stat("requests", "drain_rejected"), 1.0);

  // Introspection ops keep answering on a draining shard.
  EXPECT_EQ(fixture.request_raw(R"({"op":"ping"})"),
            R"({"status":"ok","op":"ping"})");
  const json::Value health = fixture.request(R"({"op":"health"})");
  EXPECT_FALSE(health.get_bool("accepting", true));
  EXPECT_TRUE(health.get_bool("draining", false));
  const json::Value stats = fixture.request(R"({"op":"stats"})");
  EXPECT_TRUE(stats.get_bool("draining", false));
}

TEST(ServeServer, ShardIdIsEchoedByHealthAndStats) {
  ServerOptions options;
  options.shard_id = "shard-7";
  ServerFixture fixture(options);
  EXPECT_EQ(fixture.request(R"({"op":"health"})").get_string("shard_id", ""),
            "shard-7");
  EXPECT_EQ(fixture.request(R"({"op":"stats"})").get_string("shard_id", ""),
            "shard-7");
}

TEST(ServeServer, StopCancelsSleepingJobsPromptly) {
  ServerOptions options;
  options.workers = 1;
  ServerFixture fixture(options);

  std::thread sleeper([&] {
    try {
      Client client("127.0.0.1", fixture.server->port());
      (void)client.request_raw(
          R"({"op":"job","kind":"sleep","ms":30000})");
    } catch (const std::exception&) {
      // Socket shut down mid-response is an acceptable outcome of stop().
    }
  });
  for (int i = 0; i < 200 && fixture.stat("queue", "in_flight") < 1.0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  const auto start = std::chrono::steady_clock::now();
  fixture.server->stop();  // must interrupt the 30 s sleep cooperatively
  const double stop_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  sleeper.join();
  EXPECT_LT(stop_seconds, 5.0);
}

}  // namespace
}  // namespace mrsc::serve
