// Tests for the distributor fleet: deterministic backoff schedules, the
// shard health state machine, hedging semantics, the seeded chaos proxy,
// and the headline oracle — the merged ensemble/sweep report is
// bitwise-identical to a single-shard run at any shard count, with a dead
// shard in the list, under injected proxy faults, with a drained shard,
// and with a shard killed mid-run.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "fleet/chaos_proxy.hpp"
#include "fleet/fleet.hpp"
#include "fleet/policy.hpp"
#include "fleet/transport.hpp"
#include "runtime/ensemble.hpp"
#include "serve/dispatcher.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"

namespace mrsc::fleet {
namespace {

// -------------------------------------------------------------- backoff --

TEST(FleetBackoff, ScheduleIsDeterministicPerSeedSliceAttempt) {
  BackoffPolicy policy;
  for (std::uint64_t slice = 0; slice < 4; ++slice) {
    for (std::uint64_t attempt = 0; attempt < 6; ++attempt) {
      EXPECT_DOUBLE_EQ(backoff_delay_ms(policy, slice, attempt),
                       backoff_delay_ms(policy, slice, attempt));
    }
  }
  BackoffPolicy reseeded = policy;
  reseeded.jitter_seed = 2;
  bool any_differs = false;
  for (std::uint64_t attempt = 0; attempt < 6; ++attempt) {
    if (backoff_delay_ms(policy, 0, attempt) !=
        backoff_delay_ms(reseeded, 0, attempt)) {
      any_differs = true;
    }
  }
  EXPECT_TRUE(any_differs) << "jitter seed must move the schedule";
}

TEST(FleetBackoff, DelaysAreJitteredExponentialsUnderTheCap) {
  BackoffPolicy policy;
  policy.base_ms = 10.0;
  policy.cap_ms = 80.0;
  for (std::uint64_t attempt = 0; attempt < 8; ++attempt) {
    const double ideal = std::min(80.0, 10.0 * std::pow(2.0, attempt));
    const double delay = backoff_delay_ms(policy, 3, attempt);
    EXPECT_GE(delay, 0.5 * ideal) << "attempt " << attempt;
    EXPECT_LE(delay, ideal) << "attempt " << attempt;
  }
}

TEST(FleetBackoff, SlicesDecorrelate) {
  BackoffPolicy policy;
  bool any_differs = false;
  for (std::uint64_t slice = 1; slice < 8; ++slice) {
    if (backoff_delay_ms(policy, slice, 0) !=
        backoff_delay_ms(policy, 0, 0)) {
      any_differs = true;
    }
  }
  EXPECT_TRUE(any_differs);
}

// --------------------------------------------------------------- health --

TEST(FleetHealth, TransitionsAtExactThresholdBoundaries) {
  // degrade_after=2, quarantine_after=4 (defaults): the table walks the
  // counter one event at a time and pins the state at every boundary.
  HealthTracker tracker;
  EXPECT_EQ(tracker.state(), ShardHealth::kHealthy);
  tracker.record_failure();  // bad=1: still healthy
  EXPECT_EQ(tracker.state(), ShardHealth::kHealthy);
  tracker.record_failure();  // bad=2: degraded, exactly at the threshold
  EXPECT_EQ(tracker.state(), ShardHealth::kDegraded);
  tracker.record_overload();  // bad=3: overloads count the same way
  EXPECT_EQ(tracker.state(), ShardHealth::kDegraded);
  tracker.record_failure();  // bad=4: quarantined, exactly at the threshold
  EXPECT_EQ(tracker.state(), ShardHealth::kQuarantined);

  // One success resets everything.
  tracker.record_success();
  EXPECT_EQ(tracker.state(), ShardHealth::kHealthy);
  tracker.record_failure();
  EXPECT_EQ(tracker.state(), ShardHealth::kHealthy)
      << "the consecutive-failure counter must reset on success";
}

TEST(FleetHealth, QuarantineEarnsAProbeAfterExactlyProbeAfterSkips) {
  HealthThresholds thresholds;
  thresholds.probe_after = 3;
  HealthTracker tracker(thresholds);
  for (std::uint32_t i = 0; i < thresholds.quarantine_after; ++i) {
    tracker.record_failure();
  }
  ASSERT_EQ(tracker.state(), ShardHealth::kQuarantined);
  EXPECT_FALSE(tracker.consider_probe());  // skip 1
  EXPECT_FALSE(tracker.consider_probe());  // skip 2
  EXPECT_TRUE(tracker.consider_probe());   // skip 3: probe granted
  EXPECT_EQ(tracker.state(), ShardHealth::kProbing);
  // While probing, no further probes are granted.
  EXPECT_FALSE(tracker.consider_probe());

  // Probe failure: straight back to quarantine, skip counter fresh.
  tracker.record_failure();
  EXPECT_EQ(tracker.state(), ShardHealth::kQuarantined);
  EXPECT_FALSE(tracker.consider_probe());
  EXPECT_FALSE(tracker.consider_probe());
  EXPECT_TRUE(tracker.consider_probe());
  // Probe success: healthy again.
  tracker.record_success();
  EXPECT_EQ(tracker.state(), ShardHealth::kHealthy);
}

TEST(FleetHealth, HealthyShardsNeverProbe) {
  HealthTracker tracker;
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(tracker.consider_probe());
  EXPECT_EQ(tracker.state(), ShardHealth::kHealthy);
}

// ---------------------------------------------------------- chaos proxy --

TEST(ChaosProxy, FaultDecisionsAreSeededAndReplayable) {
  ChaosFaults faults;
  faults.drop = 0.25;
  faults.delay = 0.25;
  faults.truncate = 0.25;
  faults.blackhole = 0.25;
  for (std::uint64_t index = 0; index < 64; ++index) {
    EXPECT_EQ(decide_fault(faults, 42, index),
              decide_fault(faults, 42, index));
  }
  bool any_differs = false;
  for (std::uint64_t index = 0; index < 64; ++index) {
    if (decide_fault(faults, 42, index) != decide_fault(faults, 43, index)) {
      any_differs = true;
    }
  }
  EXPECT_TRUE(any_differs) << "the seed must move the fault schedule";
}

TEST(ChaosProxy, ProbabilityOneSelectsTheFault) {
  const auto only = [](double ChaosFaults::*field) {
    ChaosFaults faults;
    faults.*field = 1.0;
    return faults;
  };
  for (std::uint64_t index = 0; index < 8; ++index) {
    EXPECT_EQ(decide_fault(only(&ChaosFaults::drop), index, index),
              FaultKind::kDrop);
    EXPECT_EQ(decide_fault(only(&ChaosFaults::delay), index, index),
              FaultKind::kDelay);
    EXPECT_EQ(decide_fault(only(&ChaosFaults::truncate), index, index),
              FaultKind::kTruncate);
    EXPECT_EQ(decide_fault(only(&ChaosFaults::blackhole), index, index),
              FaultKind::kBlackhole);
    EXPECT_EQ(decide_fault(ChaosFaults{}, index, index), FaultKind::kClean);
  }
}

// ----------------------------------------------------- in-process shards --

struct ShardProcess {
  std::unique_ptr<serve::Server> server;
  explicit ShardProcess(serve::ServerOptions options = {}) {
    if (options.workers == 0) options.workers = 2;
    server = std::make_unique<serve::Server>(options);
    server->start();
  }
  [[nodiscard]] Endpoint endpoint() const {
    return {"127.0.0.1", server->port()};
  }
};

FleetOptions fast_policy(std::vector<Endpoint> shards) {
  FleetOptions options;
  options.shards = std::move(shards);
  options.request_timeout_ms = 10'000.0;
  options.max_attempts = 6;
  options.backoff.base_ms = 1.0;
  options.backoff.cap_ms = 10.0;
  return options;
}

EnsembleSpec small_ensemble() {
  EnsembleSpec spec;
  spec.design = "counter";
  spec.replicates = 12;
  spec.base_seed = 7;
  spec.t_end = 2.0;
  spec.omega = 100.0;
  return spec;
}

// ------------------------------------------------- byte-identity oracle --

TEST(FleetMerge, EnsembleIsByteIdenticalAtAnyShardCount) {
  ShardProcess a;
  ShardProcess b;
  ShardProcess c;
  ShardProcess d;
  const EnsembleSpec spec = small_ensemble();

  FleetClient one(fast_policy({a.endpoint()}));
  const std::string golden = run_ensemble(one, spec);

  FleetClient two(fast_policy({a.endpoint(), b.endpoint()}));
  EXPECT_EQ(run_ensemble(two, spec), golden);

  FleetClient four(fast_policy(
      {a.endpoint(), b.endpoint(), c.endpoint(), d.endpoint()}));
  EXPECT_EQ(run_ensemble(four, spec), golden);
}

TEST(FleetMerge, SweepIsByteIdenticalAtAnyShardCount) {
  ShardProcess a;
  ShardProcess b;
  SweepSpec spec;
  spec.design = "cascade(3)";
  spec.omegas = {50.0, 100.0, 200.0};
  spec.base_seed = 3;
  spec.t_end = 2.0;

  FleetClient one(fast_policy({a.endpoint()}));
  const std::string golden = run_sweep(one, spec);
  FleetClient two(fast_policy({a.endpoint(), b.endpoint()}));
  EXPECT_EQ(run_sweep(two, spec), golden);
}

TEST(FleetMerge, StatsMatchAnIndependentReductionOfTheReplicates) {
  // Oracle for the merge math itself: fetch every replicate directly with a
  // plain client, reduce with runtime::reduce_species, and demand the
  // fleet's report carries exactly those doubles (via the shared %.17g
  // serializer — textual equality is bitwise equality).
  ShardProcess a;
  const EnsembleSpec spec = small_ensemble();
  FleetClient fleet(fast_policy({a.endpoint()}));
  const serve::json::Value report =
      serve::json::parse(run_ensemble(fleet, spec));

  std::vector<serve::json::Value> replies;
  for (std::size_t i = 0; i < spec.replicates; ++i) {
    const std::string request =
        R"({"op":"job","kind":"sim","design":"counter","method":"nrm",)"
        R"("seed":)" +
        std::to_string(util::Rng::stream_seed(spec.base_seed, i)) +
        R"(,"t_end":2,"omega":100})";
    serve::Client client("127.0.0.1", a.server->port());
    replies.push_back(serve::json::parse(client.request_raw(request)));
  }

  const serve::json::Value* species = report.find("species");
  ASSERT_NE(species, nullptr);
  double events_total = 0.0;
  for (const serve::json::Value& reply : replies) {
    events_total += reply.find("result")->get_number("ssa_events", 0.0);
  }
  EXPECT_EQ(report.get_number("ssa_events_total", -1.0), events_total);

  for (const serve::json::Value& entry : species->as_array()) {
    const std::string name = entry.get_string("name", "");
    std::vector<double> values;
    for (const serve::json::Value& reply : replies) {
      values.push_back(
          reply.find("result")->find("final")->get_number(name, -1.0));
    }
    const runtime::SpeciesStats stats =
        runtime::reduce_species(name, values);
    EXPECT_EQ(entry.get_number("mean", -1.0), stats.mean) << name;
    EXPECT_EQ(entry.get_number("stddev", -1.0), stats.stddev) << name;
    EXPECT_EQ(entry.get_number("min", -1.0), stats.min) << name;
    EXPECT_EQ(entry.get_number("max", -1.0), stats.max) << name;
    EXPECT_EQ(entry.get_number("q05", -1.0), stats.q05) << name;
    EXPECT_EQ(entry.get_number("q50", -1.0), stats.q50) << name;
    EXPECT_EQ(entry.get_number("q95", -1.0), stats.q95) << name;
  }
}

TEST(FleetResilience, DeadShardInTheListDoesNotChangeTheBytes) {
  ShardProcess a;
  // Reserve a port that refuses connections by binding-and-closing it.
  std::uint16_t dead_port = 0;
  {
    const serve::Socket listener =
        serve::listen_on("127.0.0.1", 0, dead_port);
  }
  const EnsembleSpec spec = small_ensemble();

  FleetClient one(fast_policy({a.endpoint()}));
  const std::string golden = run_ensemble(one, spec);

  FleetClient with_dead(
      fast_policy({{"127.0.0.1", dead_port}, a.endpoint()}));
  EXPECT_EQ(run_ensemble(with_dead, spec), golden);
  const FleetCounters counters = with_dead.counters();
  EXPECT_GE(counters.failures, 1u) << "the dead shard must have been tried";
  EXPECT_GE(counters.retries, 1u);
}

TEST(FleetResilience, DrainedShardIsBackpressureNotFailure) {
  ShardProcess a;
  ShardProcess b;
  {
    serve::Client client("127.0.0.1", a.server->port());
    EXPECT_EQ(client.request_raw(R"({"op":"drain"})"),
              R"({"status":"ok","op":"drain","draining":true})");
  }
  const EnsembleSpec spec = small_ensemble();
  FleetClient one(fast_policy({b.endpoint()}));
  const std::string golden = run_ensemble(one, spec);

  FleetClient with_drained(fast_policy({a.endpoint(), b.endpoint()}));
  EXPECT_EQ(run_ensemble(with_drained, spec), golden);
  EXPECT_GE(with_drained.counters().rejections, 1u)
      << "the drained shard must have answered with backpressure";
}

TEST(FleetResilience, ShardKilledMidRunDoesNotChangeTheBytes) {
  ShardProcess a;
  auto doomed = std::make_unique<ShardProcess>();
  const EnsembleSpec spec = small_ensemble();

  FleetClient one(fast_policy({a.endpoint()}));
  const std::string golden = run_ensemble(one, spec);

  FleetClient pair(fast_policy({doomed->endpoint(), a.endpoint()}));
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    doomed->server->stop();
  });
  const std::string report = run_ensemble(pair, spec);
  killer.join();
  EXPECT_EQ(report, golden);
}

TEST(FleetChaos, ProxyFaultsDoNotChangeTheBytes) {
  ShardProcess a;
  ShardProcess b;
  const EnsembleSpec spec = small_ensemble();
  FleetClient one(fast_policy({a.endpoint()}));
  const std::string golden = run_ensemble(one, spec);

  // Both shards behind misbehaving proxies: drops, delays, and mid-frame
  // truncations on a seeded schedule. No blackholes here — they only cost
  // wall-clock (timeout) without adding a new failure mode on this path.
  ChaosFaults faults;
  faults.drop = 0.2;
  faults.truncate = 0.2;
  faults.delay = 0.2;
  faults.delay_ms = 5.0;
  ChaosProxy proxy_a({"127.0.0.1", a.server->port()}, faults, 11);
  ChaosProxy proxy_b({"127.0.0.1", b.server->port()}, faults, 12);
  proxy_a.start();
  proxy_b.start();

  FleetOptions options = fast_policy(
      {{"127.0.0.1", proxy_a.port()}, {"127.0.0.1", proxy_b.port()}});
  options.max_attempts = 10;  // the schedule can be unlucky several times
  FleetClient chaotic(options);
  EXPECT_EQ(run_ensemble(chaotic, spec), golden);
  EXPECT_GE(proxy_a.connections() + proxy_b.connections(),
            spec.replicates);
}

TEST(FleetChaos, TruncatedResponseFailsTheRequestCleanly) {
  ShardProcess a;
  ChaosFaults faults;
  faults.truncate = 1.0;
  ChaosProxy proxy({"127.0.0.1", a.server->port()}, faults, 1);
  proxy.start();

  PendingRequest request({"127.0.0.1", proxy.port()},
                         R"({"op":"ping"})");
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (request.state() == PendingRequest::State::kPending &&
         std::chrono::steady_clock::now() < deadline) {
    wait_any({&request}, 50.0);
  }
  ASSERT_EQ(request.state(), PendingRequest::State::kFailed);
  EXPECT_NE(request.error().find("mid-frame"), std::string::npos)
      << request.error();
}

// -------------------------------------------------------------- hedging --

TEST(FleetResilience, HedgeFiresOnceAndTakesTheFasterShard) {
  ShardProcess live;
  // Shard 0 is a pure black hole: accepts, swallows, never answers. The
  // primary always routes there (lowest index among equally idle healthy
  // shards), so every answer must come from the hedge.
  ChaosFaults faults;
  faults.blackhole = 1.0;
  ChaosProxy hole({"127.0.0.1", live.server->port()}, faults, 1);
  hole.start();

  FleetOptions options = fast_policy(
      {{"127.0.0.1", hole.port()}, live.endpoint()});
  options.hedge_ms = 25.0;
  FleetClient fleet(options);

  const std::string response = fleet.request_once(R"({"op":"ping"})");
  EXPECT_EQ(response, R"({"status":"ok","op":"ping"})");
  const FleetCounters counters = fleet.counters();
  EXPECT_EQ(counters.hedges, 1u) << "exactly one hedge per slice";
  EXPECT_EQ(counters.attempts, 2u) << "primary + hedge, no retries";
  EXPECT_EQ(counters.retries, 0u);
}

// ------------------------------------------------------ catalog / drain --

TEST(FleetOps, CatalogOverTheWireMatchesTheLocalRegistry) {
  ShardProcess a;
  FleetClient fleet(fast_policy({a.endpoint()}));
  EXPECT_EQ(fetch_catalog(fleet), serve::catalog_response());
}

TEST(FleetOps, DrainFlipsEveryShardAndJobsBounce) {
  ShardProcess a;
  ShardProcess b;
  FleetClient fleet(fast_policy({a.endpoint(), b.endpoint()}));
  const std::vector<std::string> answers =
      fleet.request_all(R"({"op":"drain"})");
  ASSERT_EQ(answers.size(), 2u);
  for (const std::string& answer : answers) {
    EXPECT_EQ(answer, R"({"status":"ok","op":"drain","draining":true})");
  }
  serve::Client client("127.0.0.1", a.server->port());
  EXPECT_EQ(
      client.request_raw(
          R"({"op":"job","kind":"sim","design":"counter","t_end":1})"),
      serve::draining_response());
  // Introspection ops stay available on a draining shard.
  const serve::json::Value health =
      client.request(R"({"op":"health"})");
  EXPECT_FALSE(health.get_bool("accepting", true));
  EXPECT_TRUE(health.get_bool("draining", false));
}

// -------------------------------------------------------------- routing --

TEST(FleetRouting, BadSpecsFailLocallyBeforeAnyBytesMove) {
  // No listener anywhere near: a bad design must throw invalid_argument
  // from the local registry without a single connect.
  FleetClient fleet(fast_policy({{"127.0.0.1", 1}}));
  EnsembleSpec spec = small_ensemble();
  spec.design = "banana";
  EXPECT_THROW((void)run_ensemble(fleet, spec), std::invalid_argument);
  EXPECT_EQ(fleet.counters().attempts, 0u);
}

TEST(FleetRouting, AllShardsDownExhaustsAttemptsWithBoundedRetries) {
  std::uint16_t dead_port = 0;
  {
    const serve::Socket listener =
        serve::listen_on("127.0.0.1", 0, dead_port);
  }
  FleetOptions options = fast_policy({{"127.0.0.1", dead_port}});
  options.max_attempts = 3;
  FleetClient fleet(options);
  EXPECT_THROW((void)fleet.request_once(R"({"op":"ping"})"),
               std::runtime_error);
  const FleetCounters counters = fleet.counters();
  EXPECT_EQ(counters.attempts, 3u);
  EXPECT_EQ(counters.retries, 2u);
  EXPECT_EQ(counters.failures, 3u);
}

}  // namespace
}  // namespace mrsc::fleet
