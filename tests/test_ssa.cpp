#include "sim/ssa.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/builder.hpp"

namespace mrsc::sim {
namespace {

using core::NetworkBuilder;
using core::ReactionNetwork;
using core::SpeciesId;

ReactionNetwork decay_network(double k) {
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.species("A", 1.0);
  b.reaction("A -> B", k);
  return net;
}

TEST(ToCounts, RoundsAndClamps) {
  const std::vector<double> conc = {1.0, 0.24, -0.5};
  const auto counts = to_counts(conc, 10.0);
  EXPECT_EQ(counts, (std::vector<std::int64_t>{10, 2, 0}));
}

class SsaMethodTest : public ::testing::TestWithParam<SsaMethod> {};

TEST_P(SsaMethodTest, ReproducibleGivenSeed) {
  const ReactionNetwork net = decay_network(1.0);
  SsaOptions options;
  options.method = GetParam();
  options.t_end = 2.0;
  options.seed = 99;
  options.omega = 500.0;
  const SsaResult a = simulate_ssa(net, options);
  const SsaResult b = simulate_ssa(net, options);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.final_counts, b.final_counts);
}

TEST_P(SsaMethodTest, DecayMeanMatchesAnalytic) {
  const double k = 1.0;
  const ReactionNetwork net = decay_network(k);
  SsaOptions options;
  options.method = GetParam();
  options.t_end = 1.0;
  options.omega = 200.0;
  double total = 0.0;
  constexpr int kRuns = 60;
  for (int run = 0; run < kRuns; ++run) {
    options.seed = 1000 + static_cast<std::uint64_t>(run);
    const SsaResult result = simulate_ssa(net, options);
    total += static_cast<double>(result.final_counts[0]) / options.omega;
  }
  // Mean of A(1) is e^{-1} ~ 0.3679; stderr ~ sqrt(p(1-p)/N/runs) ~ 0.004.
  EXPECT_NEAR(total / kRuns, std::exp(-1.0), 0.02);
}

TEST_P(SsaMethodTest, ConservationOfTotalCount) {
  const ReactionNetwork net = decay_network(2.0);
  SsaOptions options;
  options.method = GetParam();
  options.t_end = 5.0;
  options.omega = 300.0;
  const SsaResult result = simulate_ssa(net, options);
  EXPECT_EQ(result.final_counts[0] + result.final_counts[1], 300);
}

TEST_P(SsaMethodTest, ExhaustionDetected) {
  const ReactionNetwork net = decay_network(10.0);
  SsaOptions options;
  options.method = GetParam();
  options.t_end = 1e6;
  options.omega = 50.0;
  const SsaResult result = simulate_ssa(net, options);
  EXPECT_TRUE(result.exhausted);
  EXPECT_EQ(result.final_counts[0], 0);
  EXPECT_EQ(result.events, 50u);
}

TEST_P(SsaMethodTest, EventLimitRespected) {
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.reaction("0 -> A", 100.0);  // endless source
  SsaOptions options;
  options.method = GetParam();
  options.t_end = 1e9;
  options.max_events = 1000;
  const SsaResult result = simulate_ssa(net, options);
  EXPECT_TRUE(result.hit_event_limit);
  EXPECT_EQ(result.events, 1000u);
}

TEST_P(SsaMethodTest, TrajectoryInConcentrationUnits) {
  const ReactionNetwork net = decay_network(1.0);
  SsaOptions options;
  options.method = GetParam();
  options.t_end = 0.5;
  options.omega = 100.0;
  const SsaResult result = simulate_ssa(net, options);
  // First sample is the initial state: A = 1.0 concentration units.
  EXPECT_DOUBLE_EQ(result.trajectory.value(0, SpeciesId{0}), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Methods, SsaMethodTest,
                         ::testing::Values(SsaMethod::kDirect,
                                           SsaMethod::kNextReaction));

TEST(Ssa, DirectAndNextReactionAgreeInDistribution) {
  // Same model, same statistics: compare the mean of a bimolecular product.
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.species("A", 1.0);
  b.species("B", 1.0);
  b.reaction("A + B -> C", 3.0);
  SsaOptions options;
  options.t_end = 0.4;
  options.omega = 150.0;

  auto mean_c = [&](SsaMethod method) {
    options.method = method;
    double total = 0.0;
    constexpr int kRuns = 50;
    for (int run = 0; run < kRuns; ++run) {
      options.seed = 7000 + static_cast<std::uint64_t>(run);
      total += static_cast<double>(
          simulate_ssa(net, options).final_counts[2]);
    }
    return total / kRuns;
  };
  const double direct = mean_c(SsaMethod::kDirect);
  const double next_reaction = mean_c(SsaMethod::kNextReaction);
  EXPECT_NEAR(direct, next_reaction, 0.05 * direct + 3.0);
}

TEST(Ssa, HomodimerizationStopsAtOddLeftover) {
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.species("A", 0.0);
  b.reaction("2 A -> B", 5.0);
  SsaOptions options;
  options.t_end = 1e5;
  options.omega = 1.0;
  const SsaResult result = simulate_ssa(
      net, options, std::vector<double>{7.0, 0.0});
  EXPECT_TRUE(result.exhausted);
  EXPECT_EQ(result.final_counts[0], 1);  // odd molecule cannot pair
  EXPECT_EQ(result.final_counts[1], 3);
}

TEST(Ssa, ZeroOrderSourceMean) {
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.reaction("0 -> A", 2.0);  // concentration flux 2/unit time
  SsaOptions options;
  options.t_end = 3.0;
  options.omega = 100.0;
  double total = 0.0;
  constexpr int kRuns = 40;
  for (int run = 0; run < kRuns; ++run) {
    options.seed = 31 + static_cast<std::uint64_t>(run);
    total += static_cast<double>(simulate_ssa(net, options).final_counts[0]);
  }
  // Expected count: 2 * 3 * omega = 600; Poisson sd ~ 24.5, stderr ~ 4.
  EXPECT_NEAR(total / kRuns, 600.0, 15.0);
}

TEST(Ssa, InvalidOptionsThrow) {
  const ReactionNetwork net = decay_network(1.0);
  SsaOptions bad;
  bad.t_end = -1.0;
  EXPECT_THROW((void)simulate_ssa(net, bad), std::invalid_argument);
  SsaOptions bad_omega;
  bad_omega.omega = 0.0;
  EXPECT_THROW((void)simulate_ssa(net, bad_omega), std::invalid_argument);
}

TEST(Ssa, CountSizeMismatchThrows) {
  const ReactionNetwork net = decay_network(1.0);
  const MassActionSystem system(net);
  SsaOptions options;
  EXPECT_THROW(
      (void)simulate_ssa(system, options, std::vector<std::int64_t>{1}),
      std::invalid_argument);
}

}  // namespace
}  // namespace mrsc::sim
