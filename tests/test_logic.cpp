#include "logic/netlist.hpp"

#include <gtest/gtest.h>

namespace mrsc::logic {
namespace {

std::uint8_t B(bool v) { return v ? 1 : 0; }

TEST(EvaluateGate, TruthTables) {
  const std::uint8_t cases[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  for (const auto& c : cases) {
    const bool a = c[0] != 0;
    const bool b = c[1] != 0;
    EXPECT_EQ(evaluate_gate(GateKind::kAnd, c), a && b);
    EXPECT_EQ(evaluate_gate(GateKind::kOr, c), a || b);
    EXPECT_EQ(evaluate_gate(GateKind::kXor, c), a != b);
    EXPECT_EQ(evaluate_gate(GateKind::kNand, c), !(a && b));
    EXPECT_EQ(evaluate_gate(GateKind::kNor, c), !(a || b));
  }
  const std::uint8_t zero[] = {B(false)};
  const std::uint8_t one[] = {B(true)};
  EXPECT_TRUE(evaluate_gate(GateKind::kNot, zero));
  EXPECT_FALSE(evaluate_gate(GateKind::kNot, one));
  EXPECT_FALSE(evaluate_gate(GateKind::kBuf, zero));
  EXPECT_TRUE(evaluate_gate(GateKind::kBuf, one));
}

TEST(EvaluateGate, ArityChecked) {
  const std::uint8_t two[] = {1, 0};
  EXPECT_THROW((void)evaluate_gate(GateKind::kNot, two),
               std::invalid_argument);
}

TEST(Netlist, CombinationalEvaluation) {
  // y = (a AND b) XOR c
  Netlist netlist;
  const NetId a = netlist.add_input("a");
  const NetId b = netlist.add_input("b");
  const NetId c = netlist.add_input("c");
  const NetId ab = netlist.add_gate(GateKind::kAnd, {a, b});
  const NetId y = netlist.add_gate(GateKind::kXor, {ab, c}, "y");

  Simulation sim(netlist);
  for (int bits = 0; bits < 8; ++bits) {
    const bool va = bits & 1, vb = bits & 2, vc = bits & 4;
    sim.set_input(a, va);
    sim.set_input(b, vb);
    sim.set_input(c, vc);
    sim.evaluate();
    EXPECT_EQ(sim.value(y), (va && vb) != vc) << "case " << bits;
  }
}

TEST(Netlist, GateOrderIndependentOfInsertion) {
  // Build y = NOT(x) where the NOT is declared before a BUF feeding it is
  // irrelevant here; instead check a diamond: d = (x AND x) OR (NOT x).
  Netlist netlist;
  const NetId x = netlist.add_input("x");
  const NetId inv = netlist.add_gate(GateKind::kNot, {x});
  const NetId both = netlist.add_gate(GateKind::kAnd, {x, x});
  const NetId d = netlist.add_gate(GateKind::kOr, {both, inv});
  Simulation sim(netlist);
  sim.set_input(x, false);
  sim.evaluate();
  EXPECT_TRUE(sim.value(d));
  sim.set_input(x, true);
  sim.evaluate();
  EXPECT_TRUE(sim.value(d));
}

TEST(Netlist, FlipFlopRegistersOnClockEdge) {
  Netlist netlist;
  const NetId d = netlist.add_input("d");
  const NetId q = netlist.add_flip_flop(false, "q");
  netlist.connect_flip_flop(q, d);
  Simulation sim(netlist);

  sim.set_input(d, true);
  sim.evaluate();
  EXPECT_FALSE(sim.value(q));  // not yet clocked
  sim.clock_edge();
  sim.evaluate();
  EXPECT_TRUE(sim.value(q));
  sim.set_input(d, false);
  sim.evaluate();
  EXPECT_TRUE(sim.value(q));  // holds until next edge
  sim.clock_edge();
  sim.evaluate();
  EXPECT_FALSE(sim.value(q));
}

TEST(Netlist, FlipFlopInitialValue) {
  Netlist netlist;
  const NetId q = netlist.add_flip_flop(true, "q");
  netlist.connect_flip_flop(q, q);  // holds forever
  Simulation sim(netlist);
  sim.evaluate();
  EXPECT_TRUE(sim.value(q));
  sim.clock_edge();
  sim.evaluate();
  EXPECT_TRUE(sim.value(q));
}

TEST(Netlist, UnconnectedFlipFlopThrows) {
  Netlist netlist;
  (void)netlist.add_flip_flop(false, "q");
  EXPECT_THROW(Simulation{netlist}, std::logic_error);
}

TEST(Netlist, CombinationalCycleThrows) {
  Netlist netlist;
  const NetId x = netlist.add_input("x");
  // Create a cycle by wiring two gates to each other. add_gate cannot
  // forward-reference, so build the cycle through the flip-flop-free trick:
  // g1 = AND(x, g2), g2 = OR(g1, x) is impossible to construct directly;
  // instead check self-reference rejection via a two-gate loop by id.
  const NetId g1 = netlist.add_gate(GateKind::kBuf, {x}, "g1");
  // Manually splice a cycle: g2 reads g1, then rewire g1 to read g2 is not
  // part of the public API -- so the strongest public check is that a
  // well-formed netlist passes and a flip-flop breaks would-be cycles.
  const NetId q = netlist.add_flip_flop(false, "q");
  const NetId g2 = netlist.add_gate(GateKind::kXor, {g1, q});
  netlist.connect_flip_flop(q, g2);  // sequential loop: fine
  EXPECT_NO_THROW(Simulation{netlist});
}

TEST(Netlist, FindByName) {
  Netlist netlist;
  const NetId a = netlist.add_input("a");
  EXPECT_EQ(netlist.find("a"), a);
  EXPECT_EQ(netlist.find("zzz"), std::nullopt);
}

TEST(Netlist, BadConnectionsThrow) {
  Netlist netlist;
  const NetId a = netlist.add_input("a");
  EXPECT_THROW(netlist.connect_flip_flop(a, a), std::invalid_argument);
  EXPECT_THROW((void)netlist.add_gate(GateKind::kAnd, {}),
               std::invalid_argument);
  EXPECT_THROW((void)netlist.add_gate(GateKind::kAnd, {NetId{99}}),
               std::invalid_argument);
  EXPECT_THROW(netlist.mark_output(NetId{99}, "y"), std::invalid_argument);
}

TEST(Netlist, SetInputOnNonInputThrows) {
  Netlist netlist;
  const NetId x = netlist.add_input("x");
  const NetId g = netlist.add_gate(GateKind::kBuf, {x});
  Simulation sim(netlist);
  EXPECT_THROW(sim.set_input(g, true), std::invalid_argument);
}

TEST(CounterNetlist, CountsAndWraps) {
  const Netlist netlist = make_counter_netlist(3, 0);
  Simulation sim(netlist);
  const NetId enable = *netlist.find("enable");
  std::uint64_t expected = 0;
  for (int cycle = 0; cycle < 20; ++cycle) {
    sim.set_input(enable, true);
    sim.evaluate();
    sim.clock_edge();
    sim.evaluate();
    expected = (expected + 1) % 8;
    EXPECT_EQ(sim.output_word(), expected) << "cycle " << cycle;
  }
}

TEST(CounterNetlist, EnableGatesCounting) {
  const Netlist netlist = make_counter_netlist(2, 1);
  Simulation sim(netlist);
  const NetId enable = *netlist.find("enable");
  sim.set_input(enable, false);
  sim.evaluate();
  sim.clock_edge();
  sim.evaluate();
  EXPECT_EQ(sim.output_word(), 1u);  // held
  sim.set_input(enable, true);
  sim.evaluate();
  sim.clock_edge();
  sim.evaluate();
  EXPECT_EQ(sim.output_word(), 2u);
}

TEST(CounterNetlist, InitialValue) {
  const Netlist netlist = make_counter_netlist(4, 9);
  Simulation sim(netlist);
  sim.evaluate();
  EXPECT_EQ(sim.output_word(), 9u);
}

TEST(CounterNetlist, BadWidthThrows) {
  EXPECT_THROW((void)make_counter_netlist(0, 0), std::invalid_argument);
  EXPECT_THROW((void)make_counter_netlist(63, 0), std::invalid_argument);
}

}  // namespace
}  // namespace mrsc::logic
