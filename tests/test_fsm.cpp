#include "fsm/fsm.hpp"

#include <gtest/gtest.h>

#include "analysis/harness.hpp"
#include "util/rng.hpp"

namespace mrsc::fsm {
namespace {

using core::ReactionNetwork;

analysis::ClockedRunOptions options_for(const FsmSpec& spec,
                                        const ReactionNetwork& net,
                                        std::size_t steps) {
  analysis::ClockedRunOptions options;
  options.ode.t_end =
      analysis::suggest_t_end(spec.clock, net.rate_policy(), steps);
  return options;
}

TEST(FsmSpec, ValidationCatchesMalformedTables) {
  FsmSpec spec;
  spec.num_states = 2;
  spec.num_inputs = 2;
  spec.next_state = {{0, 1}};  // wrong height
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.next_state = {{0, 1}, {1, 5}};  // target out of range
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.next_state = {{0, 1}, {1, 0}};
  EXPECT_NO_THROW(spec.validate());
  spec.initial_state = 7;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.initial_state = 0;
  spec.num_outputs = 1;
  spec.output = {{0, kNoOutput}, {0, 3}};  // symbol out of range
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(FsmReference, ParityMachine) {
  const FsmSpec spec = make_parity_machine();
  const std::vector<std::size_t> inputs = {1, 1, 0, 1};
  const FsmTrace trace = evaluate_reference(spec, inputs);
  EXPECT_EQ(trace.states, (std::vector<std::size_t>{1, 0, 0, 1}));
  EXPECT_EQ(trace.outputs, (std::vector<std::size_t>{1, 0, 0, 1}));
}

TEST(FsmReference, RejectsOutOfRangeInput) {
  const FsmSpec spec = make_parity_machine();
  const std::vector<std::size_t> inputs = {2};
  EXPECT_THROW((void)evaluate_reference(spec, inputs), std::invalid_argument);
}

TEST(SequenceDetector, CountsOverlappingMatches) {
  const FsmSpec spec = make_sequence_detector("101");
  // stream 1 0 1 0 1 1 0 1 : matches end at positions 2, 4, 7 (overlap!).
  const std::vector<std::size_t> inputs = {1, 0, 1, 0, 1, 1, 0, 1};
  const FsmTrace trace = evaluate_reference(spec, inputs);
  std::vector<std::size_t> match_positions;
  for (std::size_t i = 0; i < trace.outputs.size(); ++i) {
    if (trace.outputs[i] != kNoOutput) match_positions.push_back(i);
  }
  EXPECT_EQ(match_positions, (std::vector<std::size_t>{2, 4, 7}));
}

TEST(SequenceDetector, RejectsBadPatterns) {
  EXPECT_THROW((void)make_sequence_detector(""), std::invalid_argument);
  EXPECT_THROW((void)make_sequence_detector("102"), std::invalid_argument);
}

TEST(FsmMolecular, ParityMachineMatchesReference) {
  const FsmSpec spec = make_parity_machine();
  ReactionNetwork net;
  const FsmHandles handles = build_fsm(net, spec);
  const std::vector<std::size_t> inputs = {1, 0, 1, 1, 0, 1, 0, 0};
  const auto run = analysis::run_fsm(net, handles, inputs,
                                     options_for(spec, net, inputs.size()));
  const FsmTrace reference = evaluate_reference(spec, inputs);
  EXPECT_EQ(run.states, reference.states);
  EXPECT_EQ(run.outputs, reference.outputs);
}

TEST(FsmMolecular, SequenceDetectorMatchesReference) {
  const FsmSpec spec = make_sequence_detector("101");
  ReactionNetwork net;
  const FsmHandles handles = build_fsm(net, spec);
  const std::vector<std::size_t> inputs = {1, 0, 1, 0, 1, 1, 0, 1};
  const auto run = analysis::run_fsm(net, handles, inputs,
                                     options_for(spec, net, inputs.size()));
  const FsmTrace reference = evaluate_reference(spec, inputs);
  EXPECT_EQ(run.states, reference.states);
  EXPECT_EQ(run.outputs, reference.outputs);
}

TEST(FsmMolecular, StateTokenIsConserved) {
  const FsmSpec spec = make_sequence_detector("110");
  ReactionNetwork net;
  const FsmHandles handles = build_fsm(net, spec);
  const std::vector<std::size_t> inputs = {1, 1, 0, 1};
  const auto run = analysis::run_fsm(net, handles, inputs,
                                     options_for(spec, net, inputs.size()));
  const auto final_state = run.ode.trajectory.final_state();
  double total = 0.0;
  for (std::size_t s = 0; s < handles.state.size(); ++s) {
    total += final_state[handles.state[s].index()] +
             final_state[handles.state_primed[s].index()];
  }
  EXPECT_NEAR(total, 1.0, 0.02);
}

// Property: random machines executed on random input strings match the
// reference evaluator exactly.
class RandomFsmTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomFsmTest, MolecularExecutionMatchesReference) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 7);
  FsmSpec spec;
  spec.num_states = 2 + rng.uniform_below(3);   // 2..4
  spec.num_inputs = 2 + rng.uniform_below(2);   // 2..3
  spec.num_outputs = 2;
  spec.initial_state = rng.uniform_below(spec.num_states);
  spec.prefix = "rnd";
  spec.next_state.assign(spec.num_states,
                         std::vector<std::size_t>(spec.num_inputs, 0));
  spec.output.assign(spec.num_states,
                     std::vector<std::size_t>(spec.num_inputs, kNoOutput));
  for (std::size_t s = 0; s < spec.num_states; ++s) {
    for (std::size_t a = 0; a < spec.num_inputs; ++a) {
      spec.next_state[s][a] = rng.uniform_below(spec.num_states);
      if (rng.uniform() < 0.5) {
        spec.output[s][a] = rng.uniform_below(spec.num_outputs);
      }
    }
  }
  std::vector<std::size_t> inputs(6);
  for (std::size_t& a : inputs) a = rng.uniform_below(spec.num_inputs);

  ReactionNetwork net;
  const FsmHandles handles = build_fsm(net, spec);
  const auto run = analysis::run_fsm(net, handles, inputs,
                                     options_for(spec, net, inputs.size()));
  const FsmTrace reference = evaluate_reference(spec, inputs);
  EXPECT_EQ(run.states, reference.states) << "seed " << GetParam();
  EXPECT_EQ(run.outputs, reference.outputs) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFsmTest, ::testing::Range(0, 8));

TEST(FsmMolecular, RobustAcrossRateRatios) {
  const FsmSpec base = make_parity_machine();
  const std::vector<std::size_t> inputs = {1, 1, 1, 0, 1};
  const FsmTrace reference = evaluate_reference(base, inputs);
  for (const double ratio : {200.0, 5000.0}) {
    ReactionNetwork net;
    const FsmHandles handles = build_fsm(net, base);
    net.set_rate_policy(core::RatePolicy{1.0, ratio});
    const auto run = analysis::run_fsm(net, handles, inputs,
                                       options_for(base, net, inputs.size()));
    EXPECT_EQ(run.states, reference.states) << "ratio " << ratio;
  }
}

TEST(FsmHarness, RejectsBadInputs) {
  const FsmSpec spec = make_parity_machine();
  ReactionNetwork net;
  const FsmHandles handles = build_fsm(net, spec);
  analysis::ClockedRunOptions options;
  EXPECT_THROW((void)analysis::run_fsm(net, handles, {}, options),
               std::invalid_argument);
  const std::vector<std::size_t> bad = {5};
  EXPECT_THROW((void)analysis::run_fsm(net, handles, bad, options),
               std::invalid_argument);
}

TEST(Minimize, DropsUnreachableStates) {
  FsmSpec spec = make_parity_machine();
  // Add a third state nothing reaches.
  spec.num_states = 3;
  spec.next_state.push_back({2, 2});
  spec.output.push_back({0, 0});
  const MinimizationResult result = minimize(spec);
  EXPECT_EQ(result.spec.num_states, 2u);
  EXPECT_EQ(result.state_map[2], MinimizationResult::kUnreachable);
}

TEST(Minimize, MergesDuplicatedStates) {
  // Duplicate the parity machine's states: 4 states, two pairs equivalent.
  const FsmSpec base = make_parity_machine();
  FsmSpec doubled;
  doubled.num_states = 4;
  doubled.num_inputs = 2;
  doubled.num_outputs = 2;
  doubled.initial_state = 0;
  doubled.prefix = "dup";
  // States 0,2 behave like base state 0; 1,3 like base state 1. The
  // transitions ping-pong between the copies so all four are reachable.
  doubled.next_state = {{2, 3}, {3, 2}, {0, 1}, {1, 0}};
  doubled.output = {{0, 1}, {1, 0}, {0, 1}, {1, 0}};
  const MinimizationResult result = minimize(doubled);
  EXPECT_EQ(result.spec.num_states, 2u);
  EXPECT_EQ(result.state_map[0], result.state_map[2]);
  EXPECT_EQ(result.state_map[1], result.state_map[3]);

  // Behaviour preserved.
  const std::vector<std::size_t> inputs = {1, 0, 1, 1, 0};
  const FsmTrace original = evaluate_reference(doubled, inputs);
  const FsmTrace minimized = evaluate_reference(result.spec, inputs);
  EXPECT_EQ(original.outputs, minimized.outputs);
}

TEST(Minimize, AlreadyMinimalMachineUnchangedInSize) {
  const FsmSpec spec = make_sequence_detector("101");
  const MinimizationResult result = minimize(spec);
  EXPECT_EQ(result.spec.num_states, spec.num_states);
}

class MinimizeRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(MinimizeRandomTest, PreservesBehaviour) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 547 + 3);
  FsmSpec spec;
  spec.num_states = 3 + rng.uniform_below(5);
  spec.num_inputs = 2;
  spec.num_outputs = 2;
  spec.initial_state = rng.uniform_below(spec.num_states);
  spec.next_state.assign(spec.num_states, std::vector<std::size_t>(2, 0));
  spec.output.assign(spec.num_states,
                     std::vector<std::size_t>(2, kNoOutput));
  for (std::size_t s = 0; s < spec.num_states; ++s) {
    for (std::size_t a = 0; a < 2; ++a) {
      spec.next_state[s][a] = rng.uniform_below(spec.num_states);
      if (rng.uniform() < 0.6) {
        spec.output[s][a] = rng.uniform_below(2);
      }
    }
  }
  const MinimizationResult result = minimize(spec);
  EXPECT_LE(result.spec.num_states, spec.num_states);
  std::vector<std::size_t> inputs(16);
  for (std::size_t& a : inputs) a = rng.uniform_below(2);
  const FsmTrace original = evaluate_reference(spec, inputs);
  const FsmTrace minimized = evaluate_reference(result.spec, inputs);
  EXPECT_EQ(original.outputs, minimized.outputs) << "seed " << GetParam();
  // States map consistently.
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(result.state_map[original.states[i]], minimized.states[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimizeRandomTest, ::testing::Range(0, 10));

TEST(Minimize, MinimizedMachineRunsMolecularly) {
  // Duplicate-state machine compiled after minimization still conforms.
  FsmSpec doubled;
  doubled.num_states = 4;
  doubled.num_inputs = 2;
  doubled.num_outputs = 2;
  doubled.initial_state = 0;
  doubled.prefix = "min";
  doubled.next_state = {{2, 3}, {3, 2}, {0, 1}, {1, 0}};
  doubled.output = {{0, 1}, {1, 0}, {0, 1}, {1, 0}};
  const MinimizationResult minimized = minimize(doubled);

  ReactionNetwork net;
  const FsmHandles handles = build_fsm(net, minimized.spec);
  const std::vector<std::size_t> inputs = {1, 1, 0, 1};
  const auto run = analysis::run_fsm(net, handles, inputs,
                                     options_for(minimized.spec, net,
                                                 inputs.size()));
  const FsmTrace reference = evaluate_reference(minimized.spec, inputs);
  EXPECT_EQ(run.states, reference.states);
  EXPECT_EQ(run.outputs, reference.outputs);
}

TEST(FsmBuild, ReactionCountIsStatesTimesInputs) {
  const FsmSpec spec = make_sequence_detector("1011");
  ReactionNetwork net;
  const std::size_t before = net.reaction_count();
  build_fsm(net, spec);
  // 4 states x 2 inputs transitions + 4 write-backs + clock (18 reactions).
  EXPECT_EQ(net.reaction_count() - before, 4u * 2u + 4u + 18u);
}

}  // namespace
}  // namespace mrsc::fsm
