// Cross-module integration tests: whole designs driven end to end under
// varying rate regimes, stochasticity, and perturbations — the operational
// form of the paper's robustness claims.
#include <gtest/gtest.h>

#include "analysis/harness.hpp"
#include "analysis/metrics.hpp"
#include "analysis/sweep.hpp"
#include "async/chain.hpp"
#include "dsp/counter.hpp"
#include "dsp/filters.hpp"
#include "sim/ode.hpp"
#include "sim/ssa.hpp"

namespace mrsc {
namespace {

// T1 operational form: the moving-average filter stays accurate across
// decades of k_fast/k_slow separation.
class RateRatioTest : public ::testing::TestWithParam<double> {};

TEST_P(RateRatioTest, MovingAverageAccurateAtRatio) {
  const double ratio = GetParam();
  auto design = dsp::make_moving_average();
  design.network->set_rate_policy(core::RatePolicy{1.0, ratio});
  const std::vector<double> x = {1.0, 0.0, 1.0, 0.5};
  analysis::ClockedRunOptions options;
  options.ode.t_end =
      analysis::suggest_t_end({}, design.network->rate_policy(), x.size());
  const auto result = analysis::run_clocked_circuit(
      *design.network, design.circuit, "x", x, "y", options);
  EXPECT_LT(analysis::max_abs_error(result.outputs,
                                    dsp::reference_moving_average(x)),
            0.03)
      << "ratio " << ratio;
}

INSTANTIATE_TEST_SUITE_P(Ratios, RateRatioTest,
                         ::testing::Values(100.0, 1000.0, 10000.0));

TEST(Integration, MovingAverageSurvivesPerReactionJitter) {
  // Kinetic constants "are not constant at all": jitter every rate by up to
  // 1.5x in either direction; the computation must still be correct.
  auto design = dsp::make_moving_average();
  util::Rng rng(2024);
  analysis::apply_rate_jitter(*design.network, 1.5, rng);
  const std::vector<double> x = {1.0, 0.5, 1.5, 0.25};
  analysis::ClockedRunOptions options;
  options.ode.t_end = 2.0 * analysis::suggest_t_end(
                                {}, design.network->rate_policy(), x.size());
  const auto result = analysis::run_clocked_circuit(
      *design.network, design.circuit, "x", x, "y", options);
  EXPECT_LT(analysis::max_abs_error(result.outputs,
                                    dsp::reference_moving_average(x)),
            0.05);
}

TEST(Integration, CounterSurvivesPerReactionJitter) {
  core::ReactionNetwork net;
  dsp::CounterSpec spec;
  spec.bits = 3;
  const dsp::CounterHandles handles = dsp::build_counter(net, spec);
  util::Rng rng(7);
  analysis::apply_rate_jitter(net, 1.5, rng);
  analysis::ClockedRunOptions options;
  options.ode.t_end =
      2.0 * analysis::suggest_t_end(spec.clock, net.rate_policy(), 10);
  const auto result = analysis::run_counter(net, handles, 10, options);
  for (std::size_t i = 0; i < result.values.size(); ++i) {
    EXPECT_EQ(result.values[i], (i + 1) % 8) << "cycle " << i;
  }
}

TEST(Integration, AsyncChainOdeAndSsaAgree) {
  // T2 operational form: the stochastic trajectory of the chain follows the
  // deterministic one at moderate molecule counts.
  core::ReactionNetwork net;
  async::ChainSpec spec;
  spec.elements = 1;
  const async::ChainHandles handles = async::build_delay_chain(net, spec);
  net.set_initial(handles.input, 1.0);
  net.set_rate_policy(core::RatePolicy{1.0, 200.0});

  sim::OdeOptions ode;
  ode.t_end = 60.0;
  const sim::OdeResult ode_run = sim::simulate_ode(net, ode);

  sim::SsaOptions ssa;
  ssa.t_end = 60.0;
  ssa.omega = 400.0;
  ssa.seed = 17;
  const sim::SsaResult ssa_run = sim::simulate_ssa(net, ssa);

  EXPECT_NEAR(ssa_run.trajectory.final_value(handles.output),
              ode_run.trajectory.final_value(handles.output), 0.08);
}

TEST(Integration, TwoIndependentDesignsShareOneNetwork) {
  // Namespacing: an async chain and a clock coexist without interference.
  core::ReactionNetwork net;
  async::ChainSpec chain_spec;
  chain_spec.elements = 1;
  chain_spec.prefix = "chainA";
  const async::ChainHandles chain = async::build_delay_chain(net, chain_spec);
  net.set_initial(chain.input, 1.0);
  sync::ClockSpec clock_spec;
  clock_spec.prefix = "clkB";
  const sync::ClockHandles clock = sync::build_clock(net, clock_spec);

  sim::EdgeDetector clock_edges(clock.phase_g, 0.2, 0.6);
  sim::Observer* observers[] = {&clock_edges};
  sim::OdeOptions ode;
  ode.t_end = 150.0;
  const sim::OdeResult run = sim::simulate_ode(
      net, ode, net.initial_state(),
      std::span<sim::Observer* const>(observers, 1));
  EXPECT_GT(run.trajectory.final_value(chain.output), 0.9);
  EXPECT_GE(clock_edges.rising_edges().size(), 3u);
}

TEST(Integration, RateSweepOnMovingAverage) {
  // A miniature version of the T1 bench, exercised as a test.
  analysis::RateSweepConfig config;
  config.ratios = {100.0, 1000.0};
  config.jitter_factors = {1.0};
  const auto points = analysis::run_rate_sweep(
      config,
      [](const core::RatePolicy& policy, double jitter,
         std::uint64_t seed) -> double {
        auto design = dsp::make_moving_average();
        design.network->set_rate_policy(policy);
        if (jitter > 1.0) {
          util::Rng rng(seed);
          analysis::apply_rate_jitter(*design.network, jitter, rng);
        }
        const std::vector<double> x = {1.0, 0.0, 0.5};
        analysis::ClockedRunOptions options;
        options.ode.t_end =
            2.0 * analysis::suggest_t_end({}, policy, x.size());
        const auto result = analysis::run_clocked_circuit(
            *design.network, design.circuit, "x", x, "y", options);
        return analysis::max_abs_error(result.outputs,
                                       dsp::reference_moving_average(x));
      });
  ASSERT_EQ(points.size(), 2u);
  for (const auto& point : points) {
    EXPECT_FALSE(point.failed) << "ratio " << point.ratio;
    EXPECT_LT(point.error, 0.05) << "ratio " << point.ratio;
  }
}

TEST(Integration, BackwardEulerHandlesExtremeRatio) {
  // At k_fast/k_slow = 1e5 the network is stiff; the implicit integrator
  // still delivers the async transfer.
  core::ReactionNetwork net;
  async::ChainSpec spec;
  spec.elements = 1;
  const async::ChainHandles handles = async::build_delay_chain(net, spec);
  net.set_initial(handles.input, 1.0);
  net.set_rate_policy(core::RatePolicy{1.0, 100000.0});
  sim::OdeOptions options;
  options.method = sim::OdeMethod::kBackwardEuler;
  options.dt = 5e-3;
  options.t_end = 40.0;
  const sim::OdeResult run = sim::simulate_ode(net, options);
  EXPECT_GT(run.trajectory.final_value(handles.output), 0.9);
}

}  // namespace
}  // namespace mrsc
