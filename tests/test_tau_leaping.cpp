#include <gtest/gtest.h>

#include <cmath>

#include "core/builder.hpp"
#include "sim/ssa.hpp"
#include "util/rng.hpp"

namespace mrsc::sim {
namespace {

using core::NetworkBuilder;
using core::ReactionNetwork;

TEST(Poisson, SmallMeanMoments) {
  util::Rng rng(3);
  const double mean = 2.5;
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    const double v = static_cast<double>(rng.poisson(mean));
    sum += v;
    sum_sq += v * v;
  }
  const double sample_mean = sum / kSamples;
  EXPECT_NEAR(sample_mean, mean, 0.03);
  EXPECT_NEAR(sum_sq / kSamples - sample_mean * sample_mean, mean, 0.1);
}

TEST(Poisson, LargeMeanUsesNormalApprox) {
  util::Rng rng(4);
  const double mean = 400.0;
  double sum = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(rng.poisson(mean));
  }
  EXPECT_NEAR(sum / kSamples, mean, 1.0);
}

TEST(Poisson, ZeroMeanIsZero) {
  util::Rng rng(5);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

ReactionNetwork decay_network(double k) {
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.species("A", 1.0);
  b.reaction("A -> B", k);
  return net;
}

TEST(TauLeaping, DecayMeanMatchesAnalytic) {
  const ReactionNetwork net = decay_network(1.0);
  SsaOptions options;
  options.method = SsaMethod::kTauLeaping;
  options.tau = 0.005;
  options.t_end = 1.0;
  options.omega = 500.0;
  double total = 0.0;
  constexpr int kRuns = 40;
  for (int run = 0; run < kRuns; ++run) {
    options.seed = 600 + static_cast<std::uint64_t>(run);
    total += static_cast<double>(
                 simulate_ssa(net, options).final_counts[0]) /
             options.omega;
  }
  EXPECT_NEAR(total / kRuns, std::exp(-1.0), 0.03);
}

TEST(TauLeaping, ConservesTotalInClosedNetwork) {
  const ReactionNetwork net = decay_network(2.0);
  SsaOptions options;
  options.method = SsaMethod::kTauLeaping;
  options.tau = 0.01;
  options.t_end = 3.0;
  options.omega = 300.0;
  const SsaResult result = simulate_ssa(net, options);
  EXPECT_EQ(result.final_counts[0] + result.final_counts[1], 300);
}

TEST(TauLeaping, AgreesWithExactSsaOnBimolecular) {
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.species("A", 1.0);
  b.species("B", 0.8);
  b.reaction("A + B -> C", 2.0);
  auto mean_final_c = [&](SsaMethod method, double tau) {
    SsaOptions options;
    options.method = method;
    options.tau = tau;
    options.t_end = 1.0;
    options.omega = 400.0;
    double total = 0.0;
    constexpr int kRuns = 30;
    for (int run = 0; run < kRuns; ++run) {
      options.seed = 900 + static_cast<std::uint64_t>(run);
      total += static_cast<double>(simulate_ssa(net, options).final_counts[2]);
    }
    return total / kRuns;
  };
  const double exact = mean_final_c(SsaMethod::kDirect, 0.0);
  const double leaped = mean_final_c(SsaMethod::kTauLeaping, 0.01);
  EXPECT_NEAR(leaped, exact, 0.03 * exact + 2.0);
}

TEST(TauLeaping, FarFewerStepsThanExactEvents) {
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.species("A", 1.0);
  b.reaction("A -> B", 5.0);
  b.reaction("B -> A", 5.0);
  SsaOptions exact;
  exact.method = SsaMethod::kDirect;
  exact.t_end = 5.0;
  exact.omega = 2000.0;
  exact.seed = 1;
  const std::uint64_t exact_events = simulate_ssa(net, exact).events;

  // Tau-leaping fires the same number of *reactions* but in batched leaps;
  // its cost is the number of leaps (t_end / tau = 500 here), not events.
  EXPECT_GT(exact_events, 40000u);
}

TEST(TauLeaping, ExhaustionDetected) {
  const ReactionNetwork net = decay_network(10.0);
  SsaOptions options;
  options.method = SsaMethod::kTauLeaping;
  options.tau = 0.01;
  options.t_end = 1e5;
  options.omega = 50.0;
  const SsaResult result = simulate_ssa(net, options);
  EXPECT_TRUE(result.exhausted);
  EXPECT_EQ(result.final_counts[0], 0);
}

TEST(TauLeaping, InvalidTauThrows) {
  const ReactionNetwork net = decay_network(1.0);
  SsaOptions options;
  options.method = SsaMethod::kTauLeaping;
  options.tau = 0.0;
  EXPECT_THROW((void)simulate_ssa(net, options), std::invalid_argument);
}

TEST(TauLeaping, NoNegativeCounts) {
  // Aggressive leaps on a fast decay would overshoot; counts must be
  // clamped at zero.
  const ReactionNetwork net = decay_network(50.0);
  SsaOptions options;
  options.method = SsaMethod::kTauLeaping;
  options.tau = 0.05;  // deliberately large
  options.t_end = 1.0;
  options.omega = 100.0;
  const SsaResult result = simulate_ssa(net, options);
  for (const std::int64_t n : result.final_counts) {
    EXPECT_GE(n, 0);
  }
}

TEST(TauLeaping, NegativeGuardRespectsStoichiometryAboveOne) {
  // 2A -> B consumes two As per firing: the batch cap must be count/2, not
  // count, or an odd leftover drives A to -1. The cap must also not *mint*
  // molecules: 2A + B must be exactly conserved in counts.
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.species("A", 1.0);
  b.reaction("2 A -> B", 40.0);
  SsaOptions options;
  options.method = SsaMethod::kTauLeaping;
  options.tau = 0.2;  // overshoots wildly on purpose
  options.t_end = 2.0;
  options.omega = 101.0;  // odd initial count: exercises the leftover A
  const std::int64_t initial_a = 101;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    options.seed = seed;
    const SsaResult result = simulate_ssa(net, options);
    EXPECT_GE(result.final_counts[0], 0) << "seed " << seed;
    EXPECT_GE(result.final_counts[1], 0) << "seed " << seed;
    EXPECT_EQ(result.final_counts[0] + 2 * result.final_counts[1], initial_a)
        << "seed " << seed;
  }
}

TEST(TauLeaping, AbortBeforeFirstLeapRunsNothing) {
  const ReactionNetwork net = decay_network(1.0);
  SsaOptions options;
  options.method = SsaMethod::kTauLeaping;
  options.tau = 0.01;
  options.t_end = 10.0;
  options.omega = 500.0;
  options.abort = [] { return true; };
  const SsaResult result = simulate_ssa(net, options);
  EXPECT_TRUE(result.aborted);
  EXPECT_EQ(result.events, 0u);
  EXPECT_EQ(result.end_time, 0.0);
  // The initial state is still recorded and returned.
  EXPECT_EQ(result.final_counts[0], 500);
}

TEST(TauLeaping, AbortMidRunStopsAtTheNextLeap) {
  const ReactionNetwork net = decay_network(0.5);
  SsaOptions options;
  options.method = SsaMethod::kTauLeaping;
  options.tau = 0.01;
  options.t_end = 100.0;
  options.omega = 500.0;
  int leaps_allowed = 10;
  options.abort = [&leaps_allowed] { return leaps_allowed-- <= 0; };
  const SsaResult result = simulate_ssa(net, options);
  EXPECT_TRUE(result.aborted);
  // Ten 0.01 leaps were allowed before the hook tripped.
  EXPECT_NEAR(result.end_time, 0.1, 1e-9);
  EXPECT_LT(result.end_time, 100.0);
}

TEST(TauLeaping, EventLimitReported) {
  ReactionNetwork net;
  NetworkBuilder b(net);
  b.species("A", 1.0);
  b.reaction("A -> B", 5.0);
  b.reaction("B -> A", 5.0);
  SsaOptions options;
  options.method = SsaMethod::kTauLeaping;
  options.tau = 0.01;
  options.t_end = 50.0;
  options.omega = 1000.0;
  options.max_events = 100;  // far fewer than the run needs
  const SsaResult result = simulate_ssa(net, options);
  EXPECT_TRUE(result.hit_event_limit);
  EXPECT_GE(result.events, options.max_events);
  EXPECT_LT(result.end_time, options.t_end);
}

}  // namespace
}  // namespace mrsc::sim
