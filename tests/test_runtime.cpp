// Tests for the batch-execution runtime: thread-pool lifecycle, deterministic
// seeding, per-job deadlines, cooperative cancellation, and bitwise equality
// between serial and parallel execution.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "analysis/sweep.hpp"
#include "async/chain.hpp"
#include "core/network.hpp"
#include "runtime/batch.hpp"
#include "runtime/ensemble.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/ode.hpp"
#include "sim/ssa.hpp"
#include "util/rng.hpp"

namespace mrsc {
namespace {

/// A fast reversible pair that fires events for the whole horizon: the
/// workhorse for "this SSA run takes a while" tests.
core::ReactionNetwork busy_network(double initial = 50.0) {
  core::ReactionNetwork net;
  const core::SpeciesId x = net.add_species("X", initial);
  const core::SpeciesId y = net.add_species("Y", 0.0);
  net.add({{x, 1}}, {{y, 1}}, core::RateCategory::kFast);
  net.add({{y, 1}}, {{x, 1}}, core::RateCategory::kFast);
  return net;
}

// --- ThreadPool ----------------------------------------------------------

TEST(ThreadPool, RunsSubmittedTasks) {
  runtime::ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ShutdownDrainsPendingWork) {
  // Destroying the pool with a deep queue must execute everything: one
  // worker, 50 queued tasks, no wait_idle before destruction.
  std::atomic<int> counter{0};
  {
    runtime::ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        counter.fetch_add(1);
      });
    }
  }  // ~ThreadPool drains, then joins
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, SubmitFromInsideATask) {
  runtime::ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&] {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  runtime::ThreadPool pool(2);
  pool.wait_idle();  // must not hang
}

// --- BatchRunner ---------------------------------------------------------

TEST(BatchRunner, OdeJobProducesFinalState) {
  const core::ReactionNetwork net = busy_network(1.0);
  runtime::SimJob job;
  job.network = &net;
  job.kind = runtime::SimKind::kOde;
  job.ode.t_end = 20.0;
  runtime::BatchRunner runner({.threads = 1});
  const auto results = runner.run(std::vector<runtime::SimJob>{job});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, runtime::JobStatus::kOk);
  ASSERT_EQ(results[0].final_state.size(), 2u);
  // X <-> Y at equal rates equilibrates to half the total mass each.
  EXPECT_NEAR(results[0].final_state[0], 0.5, 1e-3);
  EXPECT_NEAR(results[0].final_state[1], 0.5, 1e-3);
  EXPECT_GT(results[0].ode_steps, 0u);
}

TEST(BatchRunner, FailedJobReportsError) {
  const core::ReactionNetwork net = busy_network();
  runtime::SimJob job;
  job.network = &net;
  job.kind = runtime::SimKind::kOde;
  job.ode.t_end = -1.0;  // simulate_ode rejects this
  runtime::BatchRunner runner({.threads = 1});
  const auto results = runner.run(std::vector<runtime::SimJob>{job});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, runtime::JobStatus::kFailed);
  EXPECT_FALSE(results[0].error.empty());
}

TEST(BatchRunner, JobTimeoutFires) {
  // 10k molecules of a fast reversible pair over a huge horizon: far more
  // events than fit in the deadline, so the job must come back kTimeout and
  // promptly (the abort poll runs every ~1024 events, i.e. microseconds).
  const core::ReactionNetwork net = busy_network(10.0);
  runtime::SimJob job;
  job.network = &net;
  job.kind = runtime::SimKind::kSsa;
  job.ssa.t_end = 1e12;
  job.ssa.omega = 1000.0;
  job.ssa.record_interval = 1e9;
  job.ssa.seed = 7;
  runtime::BatchRunner runner({.threads = 1, .timeout_seconds = 0.1});
  const auto start = std::chrono::steady_clock::now();
  const auto results = runner.run(std::vector<runtime::SimJob>{job});
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, runtime::JobStatus::kTimeout);
  EXPECT_LT(elapsed, 5.0);  // deadline 0.1s; generous slack for CI machines
  EXPECT_GT(results[0].ssa_events, 0u);
}

TEST(BatchRunner, TauLeapingJobHonoursTheDeadline) {
  // The deadline hook is polled once per leap in tau-leaping; a huge-horizon
  // tau run must come back kTimeout, not run to t_end.
  const core::ReactionNetwork net = busy_network(10.0);
  runtime::SimJob job;
  job.network = &net;
  job.kind = runtime::SimKind::kSsa;
  job.ssa.method = sim::SsaMethod::kTauLeaping;
  job.ssa.tau = 1e-5;
  job.ssa.t_end = 1e12;
  job.ssa.omega = 1000.0;
  job.ssa.record_interval = 1e9;
  job.ssa.seed = 13;
  runtime::BatchRunner runner({.threads = 1, .timeout_seconds = 0.1});
  const auto start = std::chrono::steady_clock::now();
  const auto results = runner.run(std::vector<runtime::SimJob>{job});
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, runtime::JobStatus::kTimeout);
  EXPECT_LT(elapsed, 5.0);
  EXPECT_LT(results[0].end_time, job.ssa.t_end);
}

TEST(BatchRunner, ResultEchoesTheJobSeed) {
  // Failure reports name the replicate's seed; the result must carry it even
  // when the job fails or times out.
  const core::ReactionNetwork net = busy_network();
  runtime::SimJob ssa_job;
  ssa_job.network = &net;
  ssa_job.kind = runtime::SimKind::kSsa;
  ssa_job.ssa.t_end = 0.1;
  ssa_job.ssa.seed = 424242;
  runtime::SimJob ode_job;
  ode_job.network = &net;
  ode_job.kind = runtime::SimKind::kOde;
  ode_job.ode.t_end = 0.1;
  runtime::BatchRunner runner({.threads = 1});
  const auto results =
      runner.run(std::vector<runtime::SimJob>{ssa_job, ode_job});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].seed, 424242u);
  EXPECT_EQ(results[1].seed, 0u);  // ODE jobs are seedless
}

TEST(BatchRunner, CancelAbortsLongSsaRunPromptly) {
  const core::ReactionNetwork net = busy_network(10.0);
  runtime::SimJob job;
  job.network = &net;
  job.kind = runtime::SimKind::kSsa;
  job.ssa.t_end = 1e12;
  job.ssa.omega = 1000.0;
  job.ssa.record_interval = 1e9;
  job.ssa.seed = 11;
  runtime::BatchRunner runner({.threads = 2});
  std::thread canceller([&runner] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    runner.cancel();
  });
  const auto start = std::chrono::steady_clock::now();
  const auto results = runner.run(std::vector<runtime::SimJob>{job, job});
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  canceller.join();
  ASSERT_EQ(results.size(), 2u);
  for (const runtime::JobResult& result : results) {
    EXPECT_EQ(result.status, runtime::JobStatus::kCancelled);
  }
  EXPECT_LT(elapsed, 5.0);
}

TEST(BatchRunner, CancelledBeforeRunSkipsJobs) {
  const core::ReactionNetwork net = busy_network();
  runtime::SimJob job;
  job.network = &net;
  runtime::BatchRunner runner({.threads = 1});
  runner.cancel();
  const auto results = runner.run(std::vector<runtime::SimJob>{job});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, runtime::JobStatus::kCancelled);
  EXPECT_EQ(results[0].ssa_events, 0u);
  runner.reset_cancel();
  EXPECT_FALSE(runner.cancel_requested());
}

// --- Deterministic parallel execution ------------------------------------

/// The error metric bench_rate_robustness uses for its T1a/T1b tables: the
/// undelivered output fraction of a 2-element async delay chain.
double chain_experiment(const core::RatePolicy& policy, double jitter,
                        std::uint64_t seed) {
  core::ReactionNetwork net;
  async::ChainSpec spec;
  spec.elements = 2;
  const async::ChainHandles chain = async::build_delay_chain(net, spec);
  net.set_initial(chain.input, 1.0);
  net.set_rate_policy(policy);
  if (jitter > 1.0) {
    util::Rng rng(seed);
    analysis::apply_rate_jitter(net, jitter, rng);
  }
  sim::OdeOptions options;
  options.t_end = 200.0 / policy.k_slow;
  const sim::OdeResult run = sim::simulate_ode(net, options);
  return 1.0 - run.trajectory.final_value(chain.output);
}

TEST(BatchRunner, EightThreadSweepBitwiseIdenticalToSerial) {
  analysis::RateSweepConfig config;
  config.ratios = {10.0, 100.0, 1000.0};
  config.jitter_factors = {1.0, 2.0};
  config.base_seed = 42;

  config.threads = 1;
  const std::vector<analysis::SweepPoint> serial =
      analysis::run_rate_sweep(config, chain_experiment);
  config.threads = 8;
  const std::vector<analysis::SweepPoint> parallel =
      analysis::run_rate_sweep(config, chain_experiment);

  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_EQ(serial.size(), 6u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].ratio, parallel[i].ratio);
    EXPECT_EQ(serial[i].jitter_factor, parallel[i].jitter_factor);
    EXPECT_EQ(serial[i].seed, parallel[i].seed);
    EXPECT_EQ(serial[i].failed, parallel[i].failed);
    // Bitwise, not approximately: the parallel path must not perturb inputs.
    EXPECT_EQ(serial[i].error, parallel[i].error) << "point " << i;
  }
}

TEST(BatchRunner, ForEachIndexPropagatesException) {
  runtime::BatchRunner runner({.threads = 4});
  EXPECT_THROW(runner.for_each_index(
                   16,
                   [](std::size_t i) {
                     if (i == 7) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

// --- Ensembles -----------------------------------------------------------

TEST(Ensemble, SeedsAreStreamDerivedAndDistinct) {
  const core::ReactionNetwork net = busy_network();
  sim::SsaOptions ssa;
  const auto jobs = runtime::make_ensemble_jobs(net, ssa, 64, 5);
  ASSERT_EQ(jobs.size(), 64u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].ssa.seed, util::Rng::stream_seed(5, i));
    for (std::size_t j = i + 1; j < jobs.size(); ++j) {
      EXPECT_NE(jobs[i].ssa.seed, jobs[j].ssa.seed);
    }
  }
}

TEST(Ensemble, ResultsIndependentOfWorkerCount) {
  const core::ReactionNetwork net = busy_network(5.0);
  sim::SsaOptions ssa;
  ssa.t_end = 5.0;
  ssa.omega = 100.0;
  ssa.record_interval = 1.0;

  runtime::EnsembleOptions serial;
  serial.replicates = 16;
  serial.base_seed = 33;
  serial.batch.threads = 1;
  runtime::EnsembleOptions parallel = serial;
  parallel.batch.threads = 8;

  const runtime::EnsembleResult a = runtime::run_ssa_ensemble(net, ssa, serial);
  const runtime::EnsembleResult b =
      runtime::run_ssa_ensemble(net, ssa, parallel);
  ASSERT_EQ(a.replicates.size(), b.replicates.size());
  EXPECT_EQ(a.ok, 16u);
  EXPECT_EQ(b.ok, 16u);
  for (std::size_t i = 0; i < a.replicates.size(); ++i) {
    EXPECT_EQ(a.replicates[i].ssa_events, b.replicates[i].ssa_events);
    ASSERT_EQ(a.replicates[i].final_state.size(),
              b.replicates[i].final_state.size());
    for (std::size_t s = 0; s < a.replicates[i].final_state.size(); ++s) {
      EXPECT_EQ(a.replicates[i].final_state[s], b.replicates[i].final_state[s]);
    }
  }
  ASSERT_EQ(a.final_stats.size(), b.final_stats.size());
  for (std::size_t s = 0; s < a.final_stats.size(); ++s) {
    EXPECT_EQ(a.final_stats[s].mean, b.final_stats[s].mean);
    EXPECT_EQ(a.final_stats[s].stddev, b.final_stats[s].stddev);
    EXPECT_EQ(a.final_stats[s].q50, b.final_stats[s].q50);
  }
}

TEST(Ensemble, StatsAreOrderedAndMassConserving) {
  const core::ReactionNetwork net = busy_network(5.0);
  sim::SsaOptions ssa;
  ssa.t_end = 5.0;
  ssa.omega = 200.0;
  ssa.record_interval = 1.0;
  runtime::EnsembleOptions options;
  options.replicates = 32;
  options.base_seed = 9;
  options.batch.threads = 2;
  const runtime::EnsembleResult result =
      runtime::run_ssa_ensemble(net, ssa, options);
  EXPECT_EQ(result.ok, 32u);
  for (const runtime::SpeciesStats& stats : result.final_stats) {
    EXPECT_LE(stats.min, stats.q05);
    EXPECT_LE(stats.q05, stats.q50);
    EXPECT_LE(stats.q50, stats.q95);
    EXPECT_LE(stats.q95, stats.max);
    EXPECT_GE(stats.mean, stats.min);
    EXPECT_LE(stats.mean, stats.max);
  }
  // X + Y is conserved at 5.0 exactly (counts are integers / omega), so the
  // per-replicate final states must sum to it.
  for (const runtime::JobResult& job : result.replicates) {
    EXPECT_NEAR(job.final_state[0] + job.final_state[1], 5.0, 1e-9);
  }
}

TEST(Ensemble, QuantileSortedInterpolates) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(runtime::quantile_sorted(values, 0.0), 1.0);
  EXPECT_EQ(runtime::quantile_sorted(values, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(runtime::quantile_sorted(values, 0.5), 2.5);
  EXPECT_EQ(runtime::quantile_sorted({}, 0.5), 0.0);
  EXPECT_EQ(runtime::quantile_sorted({7.0}, 0.9), 7.0);
}

}  // namespace
}  // namespace mrsc
