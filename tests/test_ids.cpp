#include "util/ids.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace mrsc {
namespace {

TEST(StrongId, DefaultConstructedIsInvalid) {
  SpeciesId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, SpeciesId::invalid());
}

TEST(StrongId, ExplicitValueIsValid) {
  SpeciesId id{7};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 7u);
  EXPECT_EQ(id.index(), 7u);
}

TEST(StrongId, ZeroIsValid) {
  SpeciesId id{0};
  EXPECT_TRUE(id.valid());
}

TEST(StrongId, Ordering) {
  EXPECT_LT(SpeciesId{1}, SpeciesId{2});
  EXPECT_EQ(SpeciesId{3}, SpeciesId{3});
  EXPECT_NE(SpeciesId{3}, SpeciesId{4});
}

TEST(StrongId, DifferentTagsAreDifferentTypes) {
  static_assert(!std::is_same_v<SpeciesId, ReactionId>);
  static_assert(!std::is_convertible_v<SpeciesId, ReactionId>);
}

TEST(StrongId, Hashable) {
  std::unordered_set<SpeciesId> set;
  set.insert(SpeciesId{1});
  set.insert(SpeciesId{2});
  set.insert(SpeciesId{1});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(SpeciesId{2}));
  EXPECT_FALSE(set.contains(SpeciesId{3}));
}

}  // namespace
}  // namespace mrsc
