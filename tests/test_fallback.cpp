// Failure classification and the solver fallback ladder: every failure kind
// is forced for real (not mocked), classified, and — where the ladder has a
// deeper rung — automatically recovered into a correct trajectory.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/network.hpp"
#include "runtime/batch.hpp"
#include "sim/fallback.hpp"
#include "sim/ode.hpp"
#include "sim/ssa.hpp"

namespace mrsc::sim {
namespace {

/// X -> 0 at a custom rate k: x(t) = exp(-k t). Stiff for explicit methods
/// once k * dt leaves their stability region.
core::ReactionNetwork decay_network(double k) {
  core::ReactionNetwork net;
  const core::SpeciesId x = net.add_species("X", 1.0);
  net.add({{x, 1}}, {}, core::RateCategory::kCustom, k, "decay");
  return net;
}

TEST(ClassifyOde, CleanRunIsNoFailure) {
  const core::ReactionNetwork net = decay_network(1.0);
  OdeOptions options;
  options.t_end = 1.0;
  const OdeResult result = simulate_ode(net, options);
  const SimFailure failure = classify_failure(result);
  EXPECT_FALSE(failure);
  EXPECT_EQ(failure.kind, SimFailureKind::kNone);
}

TEST(ClassifyOde, ExplosiveRk4GoesNonFinite) {
  // k * dt = 100: far outside the RK4 stability region; the iterate grows by
  // ~4e6 per step and overflows to inf within the horizon.
  const core::ReactionNetwork net = decay_network(100.0);
  OdeOptions options;
  options.method = OdeMethod::kRk4Fixed;
  options.dt = 1.0;
  options.t_end = 100.0;
  const OdeResult result = simulate_ode(net, options);
  EXPECT_TRUE(result.non_finite);
  const SimFailure failure = classify_failure(result);
  EXPECT_EQ(failure.kind, SimFailureKind::kNonFiniteState);
  // The recorded trajectory stops at the last finite state.
  for (const double v : result.trajectory.final_state()) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(ClassifyOde, ClampedMinStepIsStepUnderflow) {
  // dp45 pinned to a step the stiffness cannot tolerate: the controller
  // wants to shrink below min_step, cannot, and forces the step through.
  const core::ReactionNetwork net = decay_network(100.0);
  OdeOptions options;
  options.method = OdeMethod::kDormandPrince45;
  options.dt = 0.25;
  options.min_step = 0.25;
  options.max_step = 0.25;
  options.t_end = 1.0;
  const OdeResult result = simulate_ode(net, options);
  EXPECT_GT(result.steps_forced, 0u);
  const SimFailure failure = classify_failure(result);
  EXPECT_EQ(failure.kind, SimFailureKind::kStepUnderflow);
  EXPECT_TRUE(is_transient(SimFailureKind::kDeadline));
  EXPECT_FALSE(is_transient(failure.kind));
}

TEST(ClassifyOde, StepBudgetExhaustionIsStepLimit) {
  const core::ReactionNetwork net = decay_network(1.0);
  OdeOptions options;
  options.t_end = 100.0;
  options.max_steps = 10;
  const OdeResult result = simulate_ode(net, options);
  EXPECT_TRUE(result.hit_step_limit);
  EXPECT_EQ(classify_failure(result).kind, SimFailureKind::kStepLimit);
}

TEST(ClassifyOde, AbortHookIsDeadlineAndWinsPrecedence) {
  const core::ReactionNetwork net = decay_network(1.0);
  OdeOptions options;
  options.t_end = 100.0;
  options.abort = [] { return true; };
  const OdeResult result = simulate_ode(net, options);
  EXPECT_TRUE(result.aborted);
  EXPECT_EQ(classify_failure(result).kind, SimFailureKind::kDeadline);

  // Synthetic precedence check: a result carrying several flags classifies
  // as the most actionable one (deadline > non-finite > limit > underflow).
  OdeResult synthetic;
  synthetic.aborted = true;
  synthetic.non_finite = true;
  synthetic.hit_step_limit = true;
  synthetic.steps_forced = 3;
  EXPECT_EQ(classify_failure(synthetic).kind, SimFailureKind::kDeadline);
  synthetic.aborted = false;
  EXPECT_EQ(classify_failure(synthetic).kind, SimFailureKind::kNonFiniteState);
  synthetic.non_finite = false;
  EXPECT_EQ(classify_failure(synthetic).kind, SimFailureKind::kStepLimit);
  synthetic.hit_step_limit = false;
  EXPECT_EQ(classify_failure(synthetic).kind, SimFailureKind::kStepUnderflow);
}

TEST(ClassifySsa, EventBudgetExhaustionIsEventLimit) {
  const core::ReactionNetwork net = decay_network(1.0);
  SsaOptions options;
  options.t_end = 50.0;
  options.omega = 1000.0;
  options.max_events = 5;
  const SsaResult result = simulate_ssa(net, options);
  EXPECT_TRUE(result.hit_event_limit);
  EXPECT_EQ(classify_failure(result).kind, SimFailureKind::kEventLimit);
}

// --- the ladder itself ----------------------------------------------------

TEST(FallbackLadder, StepUnderflowRecoversOnTightenedRung) {
  // First attempt: dp45 pinned at a too-large min_step -> step underflow.
  // The tightened rung shrinks min_step by 1e3 and recovers; the result must
  // be the *correct* trajectory, x(1) = exp(-100) ~ 0, not merely "a" result.
  const core::ReactionNetwork net = decay_network(100.0);
  OdeOptions options;
  options.method = OdeMethod::kDormandPrince45;
  options.dt = 0.25;
  options.min_step = 0.25;
  options.max_step = 0.25;
  options.t_end = 1.0;
  FallbackOptions fallback;
  const FallbackResult result =
      simulate_ode_with_fallback(net, options, fallback);
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(result.log.recovered);
  EXPECT_EQ(result.log.final_rung, "tightened");
  ASSERT_EQ(result.log.attempts.size(), 1u);
  EXPECT_EQ(result.log.attempts[0].rung, "dp45");
  EXPECT_EQ(result.log.attempts[0].failure.kind,
            SimFailureKind::kStepUnderflow);
  ASSERT_EQ(result.final_state.size(), 1u);
  EXPECT_NEAR(result.final_state[0], std::exp(-100.0), 1e-6);
  EXPECT_EQ(result.log.to_string(), "dp45:step-underflow -> tightened:ok");
}

TEST(FallbackLadder, StiffRk4WalksToImplicitFixed) {
  // rk4 at dt=1 and the tightened dt=0.1 are both unstable for k=100; only
  // the L-stable backward-Euler rung integrates the decay.
  const core::ReactionNetwork net = decay_network(100.0);
  OdeOptions options;
  options.method = OdeMethod::kRk4Fixed;
  options.dt = 1.0;
  options.t_end = 100.0;
  FallbackOptions fallback;
  const FallbackResult result =
      simulate_ode_with_fallback(net, options, fallback);
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(result.log.recovered);
  EXPECT_FALSE(result.used_ssa);
  EXPECT_EQ(result.log.final_rung, "implicit-fixed");
  ASSERT_EQ(result.log.attempts.size(), 2u);
  EXPECT_EQ(result.log.attempts[0].rung, "rk4");
  EXPECT_EQ(result.log.attempts[0].failure.kind,
            SimFailureKind::kNonFiniteState);
  EXPECT_EQ(result.log.attempts[1].rung, "tightened");
  EXPECT_EQ(result.log.attempts[1].failure.kind,
            SimFailureKind::kNonFiniteState);
  ASSERT_EQ(result.final_state.size(), 1u);
  EXPECT_NEAR(result.final_state[0], 0.0, 1e-9);  // exp(-10000)
}

TEST(FallbackLadder, TransientDeadlineRetriesSameRungWithBackoff) {
  const core::ReactionNetwork net = decay_network(1.0);
  OdeOptions options;
  options.t_end = 1.0;
  FallbackOptions fallback;
  fallback.backoff_base_seconds = 0.5;
  fallback.backoff_cap_seconds = 2.0;
  std::vector<double> slept;
  fallback.sleep = [&](double seconds) { slept.push_back(seconds); };
  // The first attempt's deadline fires immediately; later attempts run free.
  std::size_t attempt = 0;
  fallback.make_abort = [&]() -> std::function<bool()> {
    const bool fail = attempt++ == 0;
    return [fail] { return fail; };
  };
  const FallbackResult result =
      simulate_ode_with_fallback(net, options, fallback);
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(result.log.recovered);
  // Transient: retried on the SAME rung, with the scheduled backoff logged.
  EXPECT_EQ(result.log.final_rung, "dp45");
  ASSERT_EQ(result.log.attempts.size(), 1u);
  EXPECT_EQ(result.log.attempts[0].rung, "dp45");
  EXPECT_EQ(result.log.attempts[0].failure.kind, SimFailureKind::kDeadline);
  EXPECT_DOUBLE_EQ(result.log.attempts[0].backoff_seconds, 0.5);
  ASSERT_EQ(slept.size(), 1u);
  EXPECT_DOUBLE_EQ(slept[0], 0.5);
  ASSERT_EQ(result.final_state.size(), 1u);
  EXPECT_NEAR(result.final_state[0], std::exp(-1.0), 1e-6);
}

TEST(FallbackLadder, AttemptBudgetExhaustionReportsLastFailure) {
  const core::ReactionNetwork net = decay_network(100.0);
  OdeOptions options;
  options.method = OdeMethod::kRk4Fixed;
  options.dt = 1.0;
  options.t_end = 100.0;
  FallbackOptions fallback;
  fallback.max_attempts = 2;  // rk4 + tightened, no implicit rung left
  const FallbackResult result =
      simulate_ode_with_fallback(net, options, fallback);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.log.recovered);
  EXPECT_EQ(result.failure.kind, SimFailureKind::kNonFiniteState);
  EXPECT_EQ(result.log.attempts.size(), 2u);
  EXPECT_EQ(result.log.to_string(),
            "rk4:non-finite-state -> tightened:non-finite-state");
}

TEST(FallbackLadder, SsaEventLimitRecoversOnEventBudgetRung) {
  // ~omega events total; a cap of 20 fails, the 16x budget rung completes.
  const core::ReactionNetwork net = decay_network(1.0);
  SsaOptions options;
  options.t_end = 50.0;
  options.omega = 100.0;
  options.seed = 7;
  options.max_events = 20;
  FallbackOptions fallback;
  const FallbackResult result =
      simulate_ssa_with_fallback(net, options, fallback);
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(result.used_ssa);
  EXPECT_TRUE(result.log.recovered);
  EXPECT_EQ(result.log.final_rung, "event-budget");
  ASSERT_EQ(result.log.attempts.size(), 1u);
  EXPECT_EQ(result.log.attempts[0].rung, "nrm");
  EXPECT_EQ(result.log.attempts[0].failure.kind, SimFailureKind::kEventLimit);
}

// --- retrying batch runner ------------------------------------------------

runtime::SimJob stiff_ode_job(const core::ReactionNetwork& net) {
  runtime::SimJob job;
  job.network = &net;
  job.kind = runtime::SimKind::kOde;
  job.ode.method = OdeMethod::kRk4Fixed;
  job.ode.dt = 1.0;
  job.ode.t_end = 100.0;
  return job;
}

TEST(BatchRetry, DefaultPolicyKeepsSingleShotSemantics) {
  const core::ReactionNetwork net = decay_network(100.0);
  runtime::BatchRunner runner(runtime::BatchOptions{});  // max_attempts == 1
  const std::vector<runtime::JobResult> results =
      runner.run(std::vector<runtime::SimJob>{stiff_ode_job(net)});
  ASSERT_EQ(results.size(), 1u);
  // The single-shot path predates failure classification: a non-finite blowup
  // is passed through silently as kOk. Opting into retries is what buys
  // classification + quarantine; max_attempts == 1 must not change behavior.
  EXPECT_EQ(results[0].status, runtime::JobStatus::kOk);
  EXPECT_EQ(results[0].failure.kind, sim::SimFailureKind::kNone);
  EXPECT_EQ(results[0].attempts, 1u);
  EXPECT_TRUE(results[0].recovery.attempts.empty());
}

TEST(BatchRetry, LadderRecoversAndReportsAttempts) {
  const core::ReactionNetwork net = decay_network(100.0);
  runtime::BatchOptions options;
  options.retry.max_attempts = 4;
  options.retry.allow_ssa_fallback = false;
  runtime::BatchRunner runner(options);
  const std::vector<runtime::JobResult> results =
      runner.run(std::vector<runtime::SimJob>{stiff_ode_job(net)});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, runtime::JobStatus::kOk);
  EXPECT_EQ(results[0].attempts, 3u);  // rk4, tightened, implicit-fixed
  EXPECT_TRUE(results[0].recovery.recovered);
  EXPECT_EQ(results[0].recovery.final_rung, "implicit-fixed");
  ASSERT_FALSE(results[0].final_state.empty());
  EXPECT_NEAR(results[0].final_state[0], 0.0, 1e-9);
}

TEST(BatchRetry, PersistentFailureIsQuarantinedNotFatal) {
  const core::ReactionNetwork stiff = decay_network(100.0);
  const core::ReactionNetwork healthy = decay_network(1.0);
  runtime::BatchOptions options;
  options.retry.max_attempts = 2;  // exhausted before the implicit rung
  runtime::BatchRunner runner(options);
  runtime::SimJob ok_job;
  ok_job.network = &healthy;
  ok_job.kind = runtime::SimKind::kOde;
  ok_job.ode.t_end = 1.0;
  const std::vector<runtime::SimJob> jobs = {stiff_ode_job(stiff), ok_job};
  const std::vector<runtime::JobResult> results = runner.run(jobs);
  ASSERT_EQ(results.size(), 2u);
  // The hard job is set aside with its classified failure...
  EXPECT_EQ(results[0].status, runtime::JobStatus::kQuarantined);
  EXPECT_EQ(results[0].failure.kind, SimFailureKind::kNonFiniteState);
  EXPECT_EQ(results[0].attempts, 2u);
  EXPECT_NE(results[0].error.find("non-finite-state"), std::string::npos);
  // ...and the batch carries on.
  EXPECT_EQ(results[1].status, runtime::JobStatus::kOk);
}

TEST(BatchRetry, RecoveryLogsAreIdenticalAcrossThreadCounts) {
  // The determinism contract extended to the ladder: per-job RecoveryLogs
  // contain only scheduled values, so an 8-worker run renders byte-identical
  // logs to a serial run.
  const core::ReactionNetwork net = decay_network(100.0);
  const std::vector<runtime::SimJob> jobs(8, stiff_ode_job(net));
  auto run_with = [&](std::size_t threads) {
    runtime::BatchOptions options;
    options.threads = threads;
    options.retry.max_attempts = 4;
    options.retry.allow_ssa_fallback = false;
    runtime::BatchRunner runner(options);
    return runner.run(jobs);
  };
  const std::vector<runtime::JobResult> serial = run_with(1);
  const std::vector<runtime::JobResult> parallel = run_with(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].status, parallel[i].status);
    EXPECT_EQ(serial[i].attempts, parallel[i].attempts);
    EXPECT_EQ(serial[i].recovery.to_json(), parallel[i].recovery.to_json());
    EXPECT_EQ(serial[i].recovery.to_string(),
              parallel[i].recovery.to_string());
  }
}

}  // namespace
}  // namespace mrsc::sim
