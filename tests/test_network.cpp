#include "core/network.hpp"

#include <gtest/gtest.h>

namespace mrsc::core {
namespace {

TEST(ReactionNetwork, AddAndLookupSpecies) {
  ReactionNetwork net;
  const SpeciesId x = net.add_species("X", 1.5);
  const SpeciesId y = net.add_species("Y");
  EXPECT_EQ(net.species_count(), 2u);
  EXPECT_EQ(net.species_name(x), "X");
  EXPECT_DOUBLE_EQ(net.initial(x), 1.5);
  EXPECT_DOUBLE_EQ(net.initial(y), 0.0);
  EXPECT_EQ(net.find_species("X"), x);
  EXPECT_EQ(net.find_species("nope"), std::nullopt);
}

TEST(ReactionNetwork, DuplicateSpeciesNameThrows) {
  ReactionNetwork net;
  net.add_species("X");
  EXPECT_THROW(net.add_species("X"), std::invalid_argument);
}

TEST(ReactionNetwork, EmptySpeciesNameThrows) {
  ReactionNetwork net;
  EXPECT_THROW(net.add_species(""), std::invalid_argument);
}

TEST(ReactionNetwork, EnsureSpeciesIdempotent) {
  ReactionNetwork net;
  const SpeciesId a = net.ensure_species("A");
  const SpeciesId b = net.ensure_species("A");
  EXPECT_EQ(a, b);
  EXPECT_EQ(net.species_count(), 1u);
}

TEST(ReactionNetwork, InitialStateVector) {
  ReactionNetwork net;
  net.add_species("A", 1.0);
  net.add_species("B", 2.0);
  const auto state = net.initial_state();
  ASSERT_EQ(state.size(), 2u);
  EXPECT_DOUBLE_EQ(state[0], 1.0);
  EXPECT_DOUBLE_EQ(state[1], 2.0);
}

TEST(ReactionNetwork, SetInitial) {
  ReactionNetwork net;
  const SpeciesId a = net.add_species("A");
  net.set_initial(a, 3.0);
  EXPECT_DOUBLE_EQ(net.initial(a), 3.0);
  EXPECT_THROW(net.set_initial(SpeciesId{5}, 1.0), std::out_of_range);
}

TEST(ReactionNetwork, AddReactionValidatesSpecies) {
  ReactionNetwork net;
  net.add_species("A");
  EXPECT_THROW(
      net.add({{SpeciesId{4}, 1}}, {}, RateCategory::kFast),
      std::invalid_argument);
}

TEST(ReactionNetwork, AddReactionRejectsZeroStoich) {
  ReactionNetwork net;
  const SpeciesId a = net.add_species("A");
  EXPECT_THROW(net.add({{a, 0}}, {}, RateCategory::kFast),
               std::invalid_argument);
}

TEST(ReactionNetwork, CustomRateMustBePositive) {
  ReactionNetwork net;
  const SpeciesId a = net.add_species("A");
  EXPECT_THROW(net.add({{a, 1}}, {}, RateCategory::kCustom, 0.0),
               std::invalid_argument);
  EXPECT_THROW(net.add({{a, 1}}, {}, RateCategory::kCustom, -1.0),
               std::invalid_argument);
  EXPECT_NO_THROW(net.add({{a, 1}}, {}, RateCategory::kCustom, 0.5));
}

TEST(ReactionNetwork, EmptyReactionThrows) {
  ReactionNetwork net;
  EXPECT_THROW(net.add({}, {}, RateCategory::kFast), std::invalid_argument);
}

TEST(ReactionNetwork, EffectiveRateUsesPolicyAndMultiplier) {
  ReactionNetwork net;
  const SpeciesId a = net.add_species("A");
  const ReactionId slow = net.add({{a, 1}}, {}, RateCategory::kSlow);
  const ReactionId fast = net.add({{a, 1}}, {}, RateCategory::kFast);
  const ReactionId custom =
      net.add({{a, 1}}, {}, RateCategory::kCustom, 7.0);
  net.set_rate_policy(RatePolicy{2.0, 800.0});
  EXPECT_DOUBLE_EQ(net.effective_rate(slow), 2.0);
  EXPECT_DOUBLE_EQ(net.effective_rate(fast), 800.0);
  EXPECT_DOUBLE_EQ(net.effective_rate(custom), 7.0);

  net.reaction_mutable(slow).set_rate_multiplier(0.5);
  EXPECT_DOUBLE_EQ(net.effective_rate(slow), 1.0);
  net.clear_rate_multipliers();
  EXPECT_DOUBLE_EQ(net.effective_rate(slow), 2.0);
}

TEST(ReactionNetwork, StoichiometricMatrix) {
  ReactionNetwork net;
  const SpeciesId a = net.add_species("A");
  const SpeciesId b = net.add_species("B");
  const SpeciesId c = net.add_species("C");
  net.add({{a, 2}, {b, 1}}, {{c, 1}}, RateCategory::kFast);  // 2A+B -> C
  net.add({{c, 1}}, {{a, 1}}, RateCategory::kSlow);          // C -> A
  const auto s = net.stoichiometric_matrix();
  ASSERT_EQ(s.rows(), 3u);
  ASSERT_EQ(s.cols(), 2u);
  EXPECT_DOUBLE_EQ(s(a.index(), 0), -2.0);
  EXPECT_DOUBLE_EQ(s(b.index(), 0), -1.0);
  EXPECT_DOUBLE_EQ(s(c.index(), 0), 1.0);
  EXPECT_DOUBLE_EQ(s(a.index(), 1), 1.0);
  EXPECT_DOUBLE_EQ(s(c.index(), 1), -1.0);
}

TEST(ReactionNetwork, ReactionsTouching) {
  ReactionNetwork net;
  const SpeciesId a = net.add_species("A");
  const SpeciesId b = net.add_species("B");
  const SpeciesId c = net.add_species("C");
  const ReactionId r0 = net.add({{a, 1}}, {{b, 1}}, RateCategory::kFast);
  const ReactionId r1 = net.add({{b, 1}}, {{c, 1}}, RateCategory::kFast);
  const auto touching_b = net.reactions_touching(b);
  ASSERT_EQ(touching_b.size(), 2u);
  EXPECT_EQ(touching_b[0], r0);
  EXPECT_EQ(touching_b[1], r1);
  EXPECT_EQ(net.reactions_touching(a).size(), 1u);
}

TEST(ReactionNetwork, MaxOrder) {
  ReactionNetwork net;
  const SpeciesId a = net.add_species("A");
  net.add({}, {{a, 1}}, RateCategory::kSlow);
  EXPECT_EQ(net.max_order(), 0u);
  net.add({{a, 2}}, {}, RateCategory::kFast);
  EXPECT_EQ(net.max_order(), 2u);
}

TEST(ReactionNetwork, ReactionToString) {
  ReactionNetwork net;
  const SpeciesId a = net.add_species("A");
  const SpeciesId b = net.add_species("B");
  const ReactionId r =
      net.add({{a, 2}}, {{b, 1}}, RateCategory::kFast, 0.0, "halve");
  const std::string text = net.reaction_to_string(r);
  EXPECT_NE(text.find("2 A"), std::string::npos);
  EXPECT_NE(text.find("fast"), std::string::npos);
  EXPECT_NE(text.find("halve"), std::string::npos);
}

TEST(ReactionNetwork, ZeroOrderRendersAsZero) {
  ReactionNetwork net;
  const SpeciesId a = net.add_species("A");
  const ReactionId r = net.add({}, {{a, 1}}, RateCategory::kSlow);
  EXPECT_NE(net.reaction_to_string(r).find("0 ->"), std::string::npos);
}

TEST(ReactionNetwork, InvalidIdsThrow) {
  ReactionNetwork net;
  EXPECT_THROW((void)net.species(SpeciesId{0}), std::out_of_range);
  EXPECT_THROW((void)net.reaction(ReactionId{0}), std::out_of_range);
  EXPECT_THROW((void)net.species(SpeciesId::invalid()), std::out_of_range);
}

TEST(NetworkStats, CountsByCategory) {
  ReactionNetwork net;
  const SpeciesId a = net.add_species("A");
  net.add({}, {{a, 1}}, RateCategory::kSlow);
  net.add({{a, 1}}, {}, RateCategory::kFast);
  net.add({{a, 2}}, {}, RateCategory::kCustom, 1.0);
  const NetworkStats stats = compute_stats(net);
  EXPECT_EQ(stats.species, 1u);
  EXPECT_EQ(stats.reactions, 3u);
  EXPECT_EQ(stats.slow_reactions, 1u);
  EXPECT_EQ(stats.fast_reactions, 1u);
  EXPECT_EQ(stats.custom_reactions, 1u);
  EXPECT_EQ(stats.max_order, 2u);
  EXPECT_EQ(stats.zero_order_sources, 1u);
}

}  // namespace
}  // namespace mrsc::core
