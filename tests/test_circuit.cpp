#include "sync/circuit.hpp"

#include <gtest/gtest.h>

#include "analysis/harness.hpp"
#include "analysis/metrics.hpp"
#include "dsp/filters.hpp"

namespace mrsc::sync {
namespace {

using core::ReactionNetwork;

// --- static (compile-time) discipline checks --------------------------------

TEST(CircuitBuilder, SignalConsumedTwiceThrows) {
  CircuitBuilder builder;
  const Sig x = builder.input("x");
  builder.output("a", x);
  EXPECT_THROW(builder.output("b", x), std::logic_error);
}

TEST(CircuitBuilder, DanglingSignalFailsCompile) {
  CircuitBuilder builder;
  (void)builder.input("x");
  ReactionNetwork net;
  EXPECT_THROW((void)builder.compile(net), std::logic_error);
}

TEST(CircuitBuilder, UnreadRegisterFailsCompile) {
  CircuitBuilder builder;
  const Sig x = builder.input("x");
  const Reg reg = builder.add_register("d");
  builder.write(reg, x);
  ReactionNetwork net;
  EXPECT_THROW((void)builder.compile(net), std::logic_error);
}

TEST(CircuitBuilder, UnwrittenRegisterFailsCompile) {
  CircuitBuilder builder;
  const Reg reg = builder.add_register("d");
  builder.output("y", builder.read(reg));
  ReactionNetwork net;
  EXPECT_THROW((void)builder.compile(net), std::logic_error);
}

TEST(CircuitBuilder, DoubleReadThrows) {
  CircuitBuilder builder;
  const Reg reg = builder.add_register("d");
  (void)builder.read(reg);
  EXPECT_THROW((void)builder.read(reg), std::logic_error);
}

TEST(CircuitBuilder, DoubleWriteThrows) {
  CircuitBuilder builder;
  const Reg reg = builder.add_register("d");
  const Sig x = builder.input("x");
  const Sig y = builder.input("y");
  builder.write(reg, x);
  EXPECT_THROW(builder.write(reg, y), std::logic_error);
}

TEST(CircuitBuilder, FanoutZeroThrows) {
  CircuitBuilder builder;
  const Sig x = builder.input("x");
  EXPECT_THROW((void)builder.fanout(x, 0), std::logic_error);
}

TEST(CircuitBuilder, ScaleZeroNumeratorThrows) {
  CircuitBuilder builder;
  const Sig x = builder.input("x");
  EXPECT_THROW((void)builder.scale(x, 0, 1), std::logic_error);
}

TEST(CircuitBuilder, InvalidSignalThrows) {
  CircuitBuilder builder;
  EXPECT_THROW(builder.output("y", Sig{}), std::logic_error);
}

TEST(CircuitBuilder, CompiledHandlesAreNamed) {
  CircuitBuilder builder;
  const Sig x = builder.input("x");
  const Reg reg = builder.add_register("d", 0.5);
  builder.output("y", builder.read(reg));
  builder.write(reg, x);
  ReactionNetwork net;
  const CompiledCircuit compiled = builder.compile(net, {}, "t");
  EXPECT_NO_THROW((void)compiled.input("x"));
  EXPECT_NO_THROW((void)compiled.output("y"));
  EXPECT_NO_THROW((void)compiled.state("d"));
  EXPECT_THROW((void)compiled.input("nope"), std::out_of_range);
  EXPECT_THROW((void)compiled.output("nope"), std::out_of_range);
  EXPECT_THROW((void)compiled.state("nope"), std::out_of_range);
  // The register's initial value lands in the red species of its triple.
  EXPECT_DOUBLE_EQ(net.initial(compiled.state("d")), 0.5);
}

// --- dynamic behaviour -------------------------------------------------------

analysis::ClockedRunOptions run_options(const ReactionNetwork& net,
                                        std::size_t cycles) {
  analysis::ClockedRunOptions options;
  options.ode.t_end =
      analysis::suggest_t_end({}, net.rate_policy(), cycles);
  return options;
}

TEST(SyncCircuit, DelayLineDelaysByOneCycle) {
  auto design = dsp::make_delay_line(1);
  const std::vector<double> x = {1.0, 0.5, 2.0, 0.25};
  const auto result = analysis::run_clocked_circuit(
      *design.network, design.circuit, "x", x, "y",
      run_options(*design.network, x.size()));
  const auto expected = dsp::reference_delay_line(x, 1);
  EXPECT_LT(analysis::max_abs_error(result.outputs, expected), 0.01);
}

TEST(SyncCircuit, TwoStageDelayLine) {
  auto design = dsp::make_delay_line(2);
  const std::vector<double> x = {1.0, 0.5, 2.0, 0.25, 0.75};
  const auto result = analysis::run_clocked_circuit(
      *design.network, design.circuit, "x", x, "y",
      run_options(*design.network, x.size()));
  const auto expected = dsp::reference_delay_line(x, 2);
  // Two registers in series double the per-cycle transfer residual.
  EXPECT_LT(analysis::max_abs_error(result.outputs, expected), 0.02);
}

TEST(SyncCircuit, RegisterInitialValueEmergesFirst) {
  // With zero warmup edges the register's initial value is the first
  // output. (With warmup >= 1, the circuit free-runs the warmup cycles on
  // zero input and initial values are consumed — and discarded — there.)
  CircuitBuilder builder;
  const Sig x = builder.input("x");
  const Reg reg = builder.add_register("d", 0.8);
  builder.output("y", builder.read(reg));
  builder.write(reg, x);
  auto net = std::make_unique<ReactionNetwork>();
  const CompiledCircuit compiled = builder.compile(*net, {}, "t");
  const std::vector<double> samples = {0.3, 0.4};
  analysis::ClockedRunOptions options = run_options(*net, samples.size());
  options.warmup_edges = 0;
  const auto result = analysis::run_clocked_circuit(*net, compiled, "x",
                                                    samples, "y", options);
  EXPECT_NEAR(result.outputs[0], 0.8, 0.01);
  EXPECT_NEAR(result.outputs[1], 0.3, 0.01);
}

TEST(SyncCircuit, AdderCombinesTwoInputsCycleWise) {
  CircuitBuilder builder;
  const Sig a = builder.input("a");
  const Reg reg = builder.add_register("d", 0.0);
  // y[n] = a[n] + d, d := a[n] -- i.e. y[n] = a[n] + a[n-1].
  const auto copies = builder.fanout(a, 2);
  const Sig sum = builder.add(copies[0], builder.read(reg));
  builder.write(reg, copies[1]);
  builder.output("y", sum);
  auto net = std::make_unique<ReactionNetwork>();
  const CompiledCircuit compiled = builder.compile(*net, {}, "t");
  const std::vector<double> samples = {1.0, 0.5, 0.25};
  const auto result = analysis::run_clocked_circuit(
      *net, compiled, "a", samples, "y", run_options(*net, samples.size()));
  EXPECT_NEAR(result.outputs[0], 1.0, 0.01);
  EXPECT_NEAR(result.outputs[1], 1.5, 0.01);
  EXPECT_NEAR(result.outputs[2], 0.75, 0.01);
}

TEST(SyncCircuit, MinOpAndLeftoverDrain) {
  // y[n] = min(x[n], c) against a constant refreshed each cycle through a
  // register loop.
  CircuitBuilder builder;
  const Sig x = builder.input("x");
  const Reg constant = builder.add_register("c", 0.5);
  const auto copies = builder.fanout(builder.read(constant), 2);
  builder.write(constant, copies[1]);
  builder.output("y", builder.min(x, copies[0]));
  auto net = std::make_unique<ReactionNetwork>();
  const CompiledCircuit compiled = builder.compile(*net, {}, "t");
  const std::vector<double> samples = {1.0, 0.2, 0.8};
  const auto result = analysis::run_clocked_circuit(
      *net, compiled, "x", samples, "y", run_options(*net, samples.size()));
  EXPECT_NEAR(result.outputs[0], 0.5, 0.02);
  EXPECT_NEAR(result.outputs[1], 0.2, 0.02);
  EXPECT_NEAR(result.outputs[2], 0.5, 0.02);
}

TEST(SyncCircuit, DiscardDrainsUnusedValues) {
  // Discarded copies must not accumulate and distort later cycles.
  CircuitBuilder builder;
  const Sig x = builder.input("x");
  const auto copies = builder.fanout(x, 2);
  builder.discard(copies[1]);
  const Reg reg = builder.add_register("d", 0.0);
  builder.output("y", builder.read(reg));
  builder.write(reg, copies[0]);
  auto net = std::make_unique<ReactionNetwork>();
  const CompiledCircuit compiled = builder.compile(*net, {}, "t");
  const std::vector<double> samples = {1.0, 1.0, 1.0, 1.0};
  const auto result = analysis::run_clocked_circuit(
      *net, compiled, "x", samples, "y", run_options(*net, samples.size()));
  const auto expected = dsp::reference_delay_line(samples, 1);
  EXPECT_LT(analysis::max_abs_error(result.outputs, expected), 0.02);
}

TEST(SyncCircuit, MovingAverageMatchesReference) {
  auto design = dsp::make_moving_average();
  const std::vector<double> x = {1.0, 1.0, 2.0, 0.0, 0.5};
  const auto result = analysis::run_clocked_circuit(
      *design.network, design.circuit, "x", x, "y",
      run_options(*design.network, x.size()));
  const auto expected = dsp::reference_moving_average(x);
  EXPECT_LT(analysis::max_abs_error(result.outputs, expected), 0.01);
}

TEST(SyncCircuit, SecondOrderIirTracksReference) {
  auto design = dsp::make_second_order_iir();
  const std::vector<double> x = {1.0, 0.0, 0.0, 0.0, 1.0, 1.0};
  const auto result = analysis::run_clocked_circuit(
      *design.network, design.circuit, "x", x, "y",
      run_options(*design.network, x.size()));
  const auto expected = dsp::reference_second_order_iir(x);
  EXPECT_LT(analysis::max_abs_error(result.outputs, expected), 0.02);
}

TEST(SyncCircuit, SlowerClockImprovesAccuracy) {
  // Timing closure: more settle time per phase -> smaller per-cycle error.
  auto run_with_stretch = [](double stretch) {
    ClockSpec clock;
    clock.phase_stretch = stretch;
    auto design = dsp::make_moving_average(clock);
    const std::vector<double> x = {1.0, 0.0, 1.0, 0.0};
    analysis::ClockedRunOptions options;
    options.ode.t_end =
        analysis::suggest_t_end(clock, design.network->rate_policy(),
                                x.size());
    const auto result = analysis::run_clocked_circuit(
        *design.network, design.circuit, "x", x, "y", options);
    return analysis::max_abs_error(result.outputs,
                                   dsp::reference_moving_average(x));
  };
  const double coarse = run_with_stretch(2.0);
  const double fine = run_with_stretch(8.0);
  EXPECT_LT(fine, coarse);
}

TEST(Filters, ReferenceModels) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  EXPECT_EQ(dsp::reference_delay_line(x, 1),
            (std::vector<double>{0.0, 1.0, 2.0}));
  EXPECT_EQ(dsp::reference_delay_line(x, 2),
            (std::vector<double>{0.0, 0.0, 1.0}));
  EXPECT_EQ(dsp::reference_moving_average(x),
            (std::vector<double>{0.5, 1.5, 2.5}));
  const std::vector<double> impulse = {1.0, 0.0, 0.0};
  const auto iir = dsp::reference_second_order_iir(impulse);
  EXPECT_DOUBLE_EQ(iir[0], 1.0);
  EXPECT_DOUBLE_EQ(iir[1], 0.5);
  EXPECT_DOUBLE_EQ(iir[2], 0.5);
}

TEST(Filters, DelayLineNeedsAtLeastOneStage) {
  EXPECT_THROW((void)dsp::make_delay_line(0), std::invalid_argument);
}

}  // namespace
}  // namespace mrsc::sync
