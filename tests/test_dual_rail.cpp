#include "sync/dual_rail.hpp"

#include <gtest/gtest.h>

#include "analysis/harness.hpp"
#include "analysis/metrics.hpp"
#include "dsp/filters.hpp"

namespace mrsc::sync {
namespace {

using core::ReactionNetwork;

analysis::ClockedRunOptions options_for(const ReactionNetwork& net,
                                        std::size_t cycles) {
  analysis::ClockedRunOptions options;
  options.ode.t_end =
      2.0 * analysis::suggest_t_end({}, net.rate_policy(), cycles);
  return options;
}

/// Compiles a signed pipeline `y = f(x)` and runs it on a signed input
/// stream (positive samples drive x_p, negative ones x_n).
std::vector<double> run_signed(
    const std::function<void(DualRailBuilder&)>& describe,
    const std::vector<double>& x) {
  CircuitBuilder base;
  DualRailBuilder builder(base);
  describe(builder);
  auto net = std::make_unique<ReactionNetwork>();
  const CompiledCircuit circuit = base.compile(*net, {}, "t");

  std::vector<analysis::PortSamples> inputs(2);
  inputs[0].port = "x_p";
  inputs[1].port = "x_n";
  for (const double v : x) {
    inputs[0].samples.push_back(v > 0.0 ? v : 0.0);
    inputs[1].samples.push_back(v < 0.0 ? -v : 0.0);
  }
  const std::vector<std::string> out_ports = {"y_p", "y_n"};
  const auto result = analysis::run_clocked_circuit_multi(
      *net, circuit, inputs, out_ports, options_for(*net, x.size()));
  return analysis::signed_series(result, "y");
}

TEST(DualRail, NegateIsExact) {
  const std::vector<double> x = {1.0, -0.5, 0.25};
  const auto y = run_signed(
      [](DualRailBuilder& b) { b.output("y", b.negate(b.input("x"))); }, x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y[i], -x[i], 0.01) << "i=" << i;
  }
}

TEST(DualRail, AddHandlesMixedSigns) {
  // y = x + c where c = -0.5 held in a register loop.
  const std::vector<double> x = {1.0, 0.25, -0.5, 2.0};
  const auto y = run_signed(
      [](DualRailBuilder& b) {
        const DSig in = b.input("x");
        const DReg constant = b.add_register("c", -0.5);
        const auto copies = b.fanout(b.read(constant), 2);
        b.write(constant, copies[1]);
        b.output("y", b.add(in, copies[0]));
      },
      x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y[i], x[i] - 0.5, 0.02) << "i=" << i;
  }
}

TEST(DualRail, SubtractProducesNegativeValues) {
  // y = 0 - x (explicit subtract through a lifted zero would need a
  // constant; use register-held zero minus input).
  const std::vector<double> x = {0.75, -0.25, 1.5};
  const auto y = run_signed(
      [](DualRailBuilder& b) {
        const DSig in = b.input("x");
        const DReg zero = b.add_register("z", 0.0);
        const auto copies = b.fanout(b.read(zero), 2);
        b.write(zero, copies[1]);
        b.output("y", b.subtract(copies[0], in));
      },
      x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y[i], -x[i], 0.02) << "i=" << i;
  }
}

TEST(DualRail, ScaleAppliesToBothRails) {
  const std::vector<double> x = {2.0, -2.0, 1.0};
  const auto y = run_signed(
      [](DualRailBuilder& b) {
        b.output("y", b.scale(b.input("x"), 3, 2));  // * 3/4
      },
      x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y[i], 0.75 * x[i], 0.02) << "i=" << i;
  }
}

TEST(DualRail, RegisterNormalizesParkedValue) {
  // Write (p, n) = (1.0, 0.6) into a register every cycle via railwise adds;
  // without normalization the rails would grow without bound. Read the
  // register's rails back out and check they stay bounded and their
  // difference stays correct.
  CircuitBuilder base;
  DualRailBuilder builder(base);
  const DSig in = builder.input("x");
  const DReg reg = builder.add_register("r", 0.0);
  const DSig held = builder.read(reg);
  builder.write(reg, in);
  builder.output("y", held);
  auto net = std::make_unique<ReactionNetwork>();
  const CompiledCircuit circuit = base.compile(*net, {}, "t");

  const std::size_t cycles = 6;
  std::vector<analysis::PortSamples> inputs(2);
  inputs[0] = {"x_p", std::vector<double>(cycles, 1.0)};
  inputs[1] = {"x_n", std::vector<double>(cycles, 0.6)};
  const std::vector<std::string> out_ports = {"y_p", "y_n"};
  const auto result = analysis::run_clocked_circuit_multi(
      *net, circuit, inputs, out_ports, options_for(*net, cycles));
  const auto& pos = result.outputs.at("y_p");
  const auto& neg = result.outputs.at("y_n");
  for (std::size_t i = 1; i < cycles; ++i) {
    EXPECT_NEAR(pos[i] - neg[i], 0.4, 0.02) << "cycle " << i;
    // Normalized: the common part was annihilated in the register.
    EXPECT_LT(neg[i], 0.05) << "cycle " << i;
    EXPECT_LT(pos[i], 0.45 + 0.05) << "cycle " << i;
  }
}

TEST(DualRail, FirstDifferenceFilterMatchesReference) {
  auto design = dsp::make_first_difference();
  const std::vector<double> x = {1.0, 0.25, 1.5, 1.5, 0.0, 2.0};
  std::vector<analysis::PortSamples> inputs(2);
  inputs[0] = {"x_p", x};
  inputs[1] = {"x_n", std::vector<double>(x.size(), 0.0)};
  const std::vector<std::string> out_ports = {"y_p", "y_n"};
  const auto result = analysis::run_clocked_circuit_multi(
      *design.network, design.circuit, inputs, out_ports,
      options_for(*design.network, x.size()));
  const auto y = analysis::signed_series(result, "y");
  const auto expected = dsp::reference_first_difference(x);
  EXPECT_LT(analysis::max_abs_error(y, expected), 0.02);
  // The filter genuinely produces negative outputs.
  EXPECT_LT(expected[4], 0.0);
  EXPECT_LT(y[4], -1.0);
}

TEST(DualRail, DiscardDrainsBothRails) {
  const std::vector<double> x = {1.0, -1.0, 1.0};
  const auto y = run_signed(
      [](DualRailBuilder& b) {
        const DSig in = b.input("x");
        const auto copies = b.fanout(in, 2);
        b.discard(copies[1]);
        b.output("y", copies[0]);
      },
      x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y[i], x[i], 0.02) << "i=" << i;
  }
}

TEST(DualRail, AnnihilateRegistersValidation) {
  CircuitBuilder base;
  const Reg r = base.add_register("r");
  EXPECT_THROW(base.annihilate_registers(r, r), std::logic_error);
  EXPECT_THROW(base.annihilate_registers(r, Reg{5}), std::logic_error);
}

TEST(MultiRun, ValidatesInputs) {
  auto design = dsp::make_first_difference();
  analysis::ClockedRunOptions options;
  const std::vector<std::string> out_ports = {"y_p"};
  const std::vector<analysis::PortSamples> empty;
  EXPECT_THROW((void)analysis::run_clocked_circuit_multi(
                   *design.network, design.circuit, empty, out_ports,
                   options),
               std::invalid_argument);
  std::vector<analysis::PortSamples> ragged(2);
  ragged[0] = {"x_p", {1.0, 2.0}};
  ragged[1] = {"x_n", {1.0}};
  EXPECT_THROW((void)analysis::run_clocked_circuit_multi(
                   *design.network, design.circuit, ragged, out_ports,
                   options),
               std::invalid_argument);
}

TEST(MultiRun, SignedSeriesNeedsBothRails) {
  analysis::MultiRunResult result;
  result.outputs.emplace("y_p", std::vector<double>{1.0});
  EXPECT_THROW((void)analysis::signed_series(result, "y"), std::out_of_range);
}

}  // namespace
}  // namespace mrsc::sync
