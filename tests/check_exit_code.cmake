# Asserts that a command exits with an exact code (CTest's WILL_FAIL only
# distinguishes zero from nonzero, which cannot tell "job failed" (1) from
# "bad usage" (2)).
#
#   cmake -DCMD="prog;arg1;arg2" -DEXPECTED=2 -P check_exit_code.cmake
if(NOT DEFINED CMD OR NOT DEFINED EXPECTED)
  message(FATAL_ERROR "check_exit_code.cmake needs -DCMD and -DEXPECTED")
endif()
execute_process(COMMAND ${CMD} RESULT_VARIABLE actual
                OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT actual EQUAL EXPECTED)
  message(FATAL_ERROR
    "expected exit code ${EXPECTED}, got '${actual}'\n"
    "command: ${CMD}\nstdout:\n${out}\nstderr:\n${err}")
endif()
