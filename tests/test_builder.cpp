#include "core/builder.hpp"

#include <gtest/gtest.h>

namespace mrsc::core {
namespace {

TEST(ParseReaction, SimpleTransfer) {
  const ParsedReaction p = parse_reaction("X -> Y");
  ASSERT_EQ(p.reactants.size(), 1u);
  ASSERT_EQ(p.products.size(), 1u);
  EXPECT_EQ(p.reactants[0].name, "X");
  EXPECT_EQ(p.reactants[0].stoich, 1u);
  EXPECT_EQ(p.products[0].name, "Y");
}

TEST(ParseReaction, Coefficients) {
  const ParsedReaction p = parse_reaction("2 A + B -> 3 C");
  ASSERT_EQ(p.reactants.size(), 2u);
  EXPECT_EQ(p.reactants[0].stoich, 2u);
  EXPECT_EQ(p.reactants[1].stoich, 1u);
  EXPECT_EQ(p.products[0].stoich, 3u);
}

TEST(ParseReaction, CoefficientWithoutSpace) {
  const ParsedReaction p = parse_reaction("2A -> B");
  EXPECT_EQ(p.reactants[0].stoich, 2u);
  EXPECT_EQ(p.reactants[0].name, "A");
}

TEST(ParseReaction, ZeroSideMeansEmpty) {
  const ParsedReaction source = parse_reaction("0 -> r");
  EXPECT_TRUE(source.reactants.empty());
  ASSERT_EQ(source.products.size(), 1u);

  const ParsedReaction sink = parse_reaction("A -> 0");
  EXPECT_TRUE(sink.products.empty());
}

TEST(ParseReaction, EmptyRhsMeansEmpty) {
  const ParsedReaction sink = parse_reaction("A -> ");
  EXPECT_TRUE(sink.products.empty());
}

TEST(ParseReaction, UnderscoreNamesAllowed) {
  const ParsedReaction p = parse_reaction("I_G1 + R_2 -> 2 G_1 + G_2");
  EXPECT_EQ(p.reactants[0].name, "I_G1");
  EXPECT_EQ(p.products[0].name, "G_1");
  EXPECT_EQ(p.products[0].stoich, 2u);
}

TEST(ParseReaction, MissingArrowThrows) {
  EXPECT_THROW(parse_reaction("A + B"), std::invalid_argument);
}

TEST(ParseReaction, DoubleArrowThrows) {
  EXPECT_THROW(parse_reaction("A -> B -> C"), std::invalid_argument);
}

TEST(ParseReaction, EmptyTermThrows) {
  EXPECT_THROW(parse_reaction("A + -> B"), std::invalid_argument);
}

TEST(ParseReaction, ZeroCoefficientThrows) {
  EXPECT_THROW(parse_reaction("0 A -> B"), std::invalid_argument);
}

TEST(ParseReaction, BothSidesEmptyThrows) {
  EXPECT_THROW(parse_reaction("0 -> 0"), std::invalid_argument);
}

TEST(NetworkBuilder, CreatesSpeciesOnDemand) {
  ReactionNetwork net;
  NetworkBuilder builder(net);
  builder.reaction("X + b -> G1", RateCategory::kSlow);
  EXPECT_EQ(net.species_count(), 3u);
  EXPECT_TRUE(net.find_species("X").has_value());
  EXPECT_TRUE(net.find_species("b").has_value());
  EXPECT_TRUE(net.find_species("G1").has_value());
  EXPECT_EQ(net.reaction_count(), 1u);
  EXPECT_EQ(net.reaction(ReactionId{0}).category(), RateCategory::kSlow);
}

TEST(NetworkBuilder, ReusesExistingSpecies) {
  ReactionNetwork net;
  NetworkBuilder builder(net);
  builder.species("X", 2.0);
  builder.reaction("X -> Y", RateCategory::kFast);
  EXPECT_EQ(net.species_count(), 2u);
  EXPECT_DOUBLE_EQ(net.initial(*net.find_species("X")), 2.0);
}

TEST(NetworkBuilder, CustomRate) {
  ReactionNetwork net;
  NetworkBuilder builder(net);
  builder.reaction("A -> B", 2.5);
  EXPECT_EQ(net.reaction(ReactionId{0}).category(), RateCategory::kCustom);
  EXPECT_DOUBLE_EQ(net.effective_rate(ReactionId{0}), 2.5);
}

TEST(NetworkBuilder, LabelPrefix) {
  ReactionNetwork net;
  NetworkBuilder builder(net);
  builder.set_label_prefix("clk.");
  builder.reaction("A -> B", RateCategory::kFast, "hop");
  EXPECT_EQ(net.reaction(ReactionId{0}).label(), "clk.hop");
}

TEST(NetworkBuilder, SpeciesInitialOverwrite) {
  ReactionNetwork net;
  NetworkBuilder builder(net);
  builder.species("A");
  builder.species("A", 4.0);
  EXPECT_DOUBLE_EQ(net.initial(*net.find_species("A")), 4.0);
}

}  // namespace
}  // namespace mrsc::core
