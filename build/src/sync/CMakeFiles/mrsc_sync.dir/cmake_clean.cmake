file(REMOVE_RECURSE
  "CMakeFiles/mrsc_sync.dir/circuit.cpp.o"
  "CMakeFiles/mrsc_sync.dir/circuit.cpp.o.d"
  "CMakeFiles/mrsc_sync.dir/clock.cpp.o"
  "CMakeFiles/mrsc_sync.dir/clock.cpp.o.d"
  "CMakeFiles/mrsc_sync.dir/dual_rail.cpp.o"
  "CMakeFiles/mrsc_sync.dir/dual_rail.cpp.o.d"
  "libmrsc_sync.a"
  "libmrsc_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrsc_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
