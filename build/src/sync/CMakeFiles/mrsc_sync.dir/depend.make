# Empty dependencies file for mrsc_sync.
# This may be replaced when dependencies are built.
