
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sync/circuit.cpp" "src/sync/CMakeFiles/mrsc_sync.dir/circuit.cpp.o" "gcc" "src/sync/CMakeFiles/mrsc_sync.dir/circuit.cpp.o.d"
  "/root/repo/src/sync/clock.cpp" "src/sync/CMakeFiles/mrsc_sync.dir/clock.cpp.o" "gcc" "src/sync/CMakeFiles/mrsc_sync.dir/clock.cpp.o.d"
  "/root/repo/src/sync/dual_rail.cpp" "src/sync/CMakeFiles/mrsc_sync.dir/dual_rail.cpp.o" "gcc" "src/sync/CMakeFiles/mrsc_sync.dir/dual_rail.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mrsc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/modules/CMakeFiles/mrsc_modules.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mrsc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
