file(REMOVE_RECURSE
  "libmrsc_sync.a"
)
