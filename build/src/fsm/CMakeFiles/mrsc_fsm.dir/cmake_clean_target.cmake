file(REMOVE_RECURSE
  "libmrsc_fsm.a"
)
