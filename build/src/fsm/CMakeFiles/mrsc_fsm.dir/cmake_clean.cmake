file(REMOVE_RECURSE
  "CMakeFiles/mrsc_fsm.dir/fsm.cpp.o"
  "CMakeFiles/mrsc_fsm.dir/fsm.cpp.o.d"
  "libmrsc_fsm.a"
  "libmrsc_fsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrsc_fsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
