# Empty dependencies file for mrsc_fsm.
# This may be replaced when dependencies are built.
