# Empty dependencies file for mrsc_sim.
# This may be replaced when dependencies are built.
