file(REMOVE_RECURSE
  "CMakeFiles/mrsc_sim.dir/mass_action.cpp.o"
  "CMakeFiles/mrsc_sim.dir/mass_action.cpp.o.d"
  "CMakeFiles/mrsc_sim.dir/observer.cpp.o"
  "CMakeFiles/mrsc_sim.dir/observer.cpp.o.d"
  "CMakeFiles/mrsc_sim.dir/ode.cpp.o"
  "CMakeFiles/mrsc_sim.dir/ode.cpp.o.d"
  "CMakeFiles/mrsc_sim.dir/ssa.cpp.o"
  "CMakeFiles/mrsc_sim.dir/ssa.cpp.o.d"
  "CMakeFiles/mrsc_sim.dir/trajectory.cpp.o"
  "CMakeFiles/mrsc_sim.dir/trajectory.cpp.o.d"
  "libmrsc_sim.a"
  "libmrsc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrsc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
