file(REMOVE_RECURSE
  "libmrsc_sim.a"
)
