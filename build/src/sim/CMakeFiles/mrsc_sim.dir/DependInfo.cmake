
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/mass_action.cpp" "src/sim/CMakeFiles/mrsc_sim.dir/mass_action.cpp.o" "gcc" "src/sim/CMakeFiles/mrsc_sim.dir/mass_action.cpp.o.d"
  "/root/repo/src/sim/observer.cpp" "src/sim/CMakeFiles/mrsc_sim.dir/observer.cpp.o" "gcc" "src/sim/CMakeFiles/mrsc_sim.dir/observer.cpp.o.d"
  "/root/repo/src/sim/ode.cpp" "src/sim/CMakeFiles/mrsc_sim.dir/ode.cpp.o" "gcc" "src/sim/CMakeFiles/mrsc_sim.dir/ode.cpp.o.d"
  "/root/repo/src/sim/ssa.cpp" "src/sim/CMakeFiles/mrsc_sim.dir/ssa.cpp.o" "gcc" "src/sim/CMakeFiles/mrsc_sim.dir/ssa.cpp.o.d"
  "/root/repo/src/sim/trajectory.cpp" "src/sim/CMakeFiles/mrsc_sim.dir/trajectory.cpp.o" "gcc" "src/sim/CMakeFiles/mrsc_sim.dir/trajectory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mrsc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mrsc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
