file(REMOVE_RECURSE
  "libmrsc_analysis.a"
)
