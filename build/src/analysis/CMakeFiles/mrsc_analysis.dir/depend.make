# Empty dependencies file for mrsc_analysis.
# This may be replaced when dependencies are built.
