file(REMOVE_RECURSE
  "CMakeFiles/mrsc_analysis.dir/conservation.cpp.o"
  "CMakeFiles/mrsc_analysis.dir/conservation.cpp.o.d"
  "CMakeFiles/mrsc_analysis.dir/harness.cpp.o"
  "CMakeFiles/mrsc_analysis.dir/harness.cpp.o.d"
  "CMakeFiles/mrsc_analysis.dir/metrics.cpp.o"
  "CMakeFiles/mrsc_analysis.dir/metrics.cpp.o.d"
  "CMakeFiles/mrsc_analysis.dir/plot.cpp.o"
  "CMakeFiles/mrsc_analysis.dir/plot.cpp.o.d"
  "CMakeFiles/mrsc_analysis.dir/sweep.cpp.o"
  "CMakeFiles/mrsc_analysis.dir/sweep.cpp.o.d"
  "libmrsc_analysis.a"
  "libmrsc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrsc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
