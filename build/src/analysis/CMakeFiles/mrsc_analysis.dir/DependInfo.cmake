
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/conservation.cpp" "src/analysis/CMakeFiles/mrsc_analysis.dir/conservation.cpp.o" "gcc" "src/analysis/CMakeFiles/mrsc_analysis.dir/conservation.cpp.o.d"
  "/root/repo/src/analysis/harness.cpp" "src/analysis/CMakeFiles/mrsc_analysis.dir/harness.cpp.o" "gcc" "src/analysis/CMakeFiles/mrsc_analysis.dir/harness.cpp.o.d"
  "/root/repo/src/analysis/metrics.cpp" "src/analysis/CMakeFiles/mrsc_analysis.dir/metrics.cpp.o" "gcc" "src/analysis/CMakeFiles/mrsc_analysis.dir/metrics.cpp.o.d"
  "/root/repo/src/analysis/plot.cpp" "src/analysis/CMakeFiles/mrsc_analysis.dir/plot.cpp.o" "gcc" "src/analysis/CMakeFiles/mrsc_analysis.dir/plot.cpp.o.d"
  "/root/repo/src/analysis/sweep.cpp" "src/analysis/CMakeFiles/mrsc_analysis.dir/sweep.cpp.o" "gcc" "src/analysis/CMakeFiles/mrsc_analysis.dir/sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mrsc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mrsc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/mrsc_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/async/CMakeFiles/mrsc_async.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/mrsc_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/fsm/CMakeFiles/mrsc_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/modules/CMakeFiles/mrsc_modules.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mrsc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
