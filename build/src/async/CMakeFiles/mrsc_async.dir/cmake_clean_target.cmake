file(REMOVE_RECURSE
  "libmrsc_async.a"
)
