file(REMOVE_RECURSE
  "CMakeFiles/mrsc_async.dir/chain.cpp.o"
  "CMakeFiles/mrsc_async.dir/chain.cpp.o.d"
  "CMakeFiles/mrsc_async.dir/circuit.cpp.o"
  "CMakeFiles/mrsc_async.dir/circuit.cpp.o.d"
  "libmrsc_async.a"
  "libmrsc_async.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrsc_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
