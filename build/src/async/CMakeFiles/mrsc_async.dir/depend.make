# Empty dependencies file for mrsc_async.
# This may be replaced when dependencies are built.
