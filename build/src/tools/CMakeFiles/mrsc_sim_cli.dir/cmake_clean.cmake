file(REMOVE_RECURSE
  "CMakeFiles/mrsc_sim_cli.dir/mrsc_sim.cpp.o"
  "CMakeFiles/mrsc_sim_cli.dir/mrsc_sim.cpp.o.d"
  "mrsc_sim"
  "mrsc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrsc_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
