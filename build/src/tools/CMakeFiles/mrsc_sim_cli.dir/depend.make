# Empty dependencies file for mrsc_sim_cli.
# This may be replaced when dependencies are built.
