# Empty dependencies file for mrsc_dsp.
# This may be replaced when dependencies are built.
