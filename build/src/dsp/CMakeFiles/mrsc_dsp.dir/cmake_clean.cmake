file(REMOVE_RECURSE
  "CMakeFiles/mrsc_dsp.dir/counter.cpp.o"
  "CMakeFiles/mrsc_dsp.dir/counter.cpp.o.d"
  "CMakeFiles/mrsc_dsp.dir/filters.cpp.o"
  "CMakeFiles/mrsc_dsp.dir/filters.cpp.o.d"
  "libmrsc_dsp.a"
  "libmrsc_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrsc_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
