
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/counter.cpp" "src/dsp/CMakeFiles/mrsc_dsp.dir/counter.cpp.o" "gcc" "src/dsp/CMakeFiles/mrsc_dsp.dir/counter.cpp.o.d"
  "/root/repo/src/dsp/filters.cpp" "src/dsp/CMakeFiles/mrsc_dsp.dir/filters.cpp.o" "gcc" "src/dsp/CMakeFiles/mrsc_dsp.dir/filters.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mrsc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/mrsc_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/modules/CMakeFiles/mrsc_modules.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mrsc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
