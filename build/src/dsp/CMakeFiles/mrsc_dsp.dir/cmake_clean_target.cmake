file(REMOVE_RECURSE
  "libmrsc_dsp.a"
)
