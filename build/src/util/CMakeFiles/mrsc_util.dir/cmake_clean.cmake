file(REMOVE_RECURSE
  "CMakeFiles/mrsc_util.dir/matrix.cpp.o"
  "CMakeFiles/mrsc_util.dir/matrix.cpp.o.d"
  "CMakeFiles/mrsc_util.dir/rng.cpp.o"
  "CMakeFiles/mrsc_util.dir/rng.cpp.o.d"
  "libmrsc_util.a"
  "libmrsc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrsc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
