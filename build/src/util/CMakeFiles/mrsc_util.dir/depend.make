# Empty dependencies file for mrsc_util.
# This may be replaced when dependencies are built.
