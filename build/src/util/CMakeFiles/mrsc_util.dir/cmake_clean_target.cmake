file(REMOVE_RECURSE
  "libmrsc_util.a"
)
