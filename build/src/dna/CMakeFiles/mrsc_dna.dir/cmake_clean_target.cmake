file(REMOVE_RECURSE
  "libmrsc_dna.a"
)
