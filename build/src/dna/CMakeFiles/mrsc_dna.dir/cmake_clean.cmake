file(REMOVE_RECURSE
  "CMakeFiles/mrsc_dna.dir/dsd.cpp.o"
  "CMakeFiles/mrsc_dna.dir/dsd.cpp.o.d"
  "libmrsc_dna.a"
  "libmrsc_dna.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrsc_dna.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
