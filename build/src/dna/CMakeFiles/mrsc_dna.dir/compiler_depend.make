# Empty compiler generated dependencies file for mrsc_dna.
# This may be replaced when dependencies are built.
