file(REMOVE_RECURSE
  "libmrsc_logic.a"
)
