file(REMOVE_RECURSE
  "CMakeFiles/mrsc_logic.dir/netlist.cpp.o"
  "CMakeFiles/mrsc_logic.dir/netlist.cpp.o.d"
  "libmrsc_logic.a"
  "libmrsc_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrsc_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
