# Empty compiler generated dependencies file for mrsc_logic.
# This may be replaced when dependencies are built.
