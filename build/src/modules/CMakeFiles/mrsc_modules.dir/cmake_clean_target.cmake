file(REMOVE_RECURSE
  "libmrsc_modules.a"
)
