
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/modules/combinational.cpp" "src/modules/CMakeFiles/mrsc_modules.dir/combinational.cpp.o" "gcc" "src/modules/CMakeFiles/mrsc_modules.dir/combinational.cpp.o.d"
  "/root/repo/src/modules/compare.cpp" "src/modules/CMakeFiles/mrsc_modules.dir/compare.cpp.o" "gcc" "src/modules/CMakeFiles/mrsc_modules.dir/compare.cpp.o.d"
  "/root/repo/src/modules/multiply.cpp" "src/modules/CMakeFiles/mrsc_modules.dir/multiply.cpp.o" "gcc" "src/modules/CMakeFiles/mrsc_modules.dir/multiply.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mrsc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mrsc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
