file(REMOVE_RECURSE
  "CMakeFiles/mrsc_modules.dir/combinational.cpp.o"
  "CMakeFiles/mrsc_modules.dir/combinational.cpp.o.d"
  "CMakeFiles/mrsc_modules.dir/compare.cpp.o"
  "CMakeFiles/mrsc_modules.dir/compare.cpp.o.d"
  "CMakeFiles/mrsc_modules.dir/multiply.cpp.o"
  "CMakeFiles/mrsc_modules.dir/multiply.cpp.o.d"
  "libmrsc_modules.a"
  "libmrsc_modules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrsc_modules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
