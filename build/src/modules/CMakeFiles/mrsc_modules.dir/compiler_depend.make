# Empty compiler generated dependencies file for mrsc_modules.
# This may be replaced when dependencies are built.
