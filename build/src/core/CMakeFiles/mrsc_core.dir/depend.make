# Empty dependencies file for mrsc_core.
# This may be replaced when dependencies are built.
