file(REMOVE_RECURSE
  "libmrsc_core.a"
)
