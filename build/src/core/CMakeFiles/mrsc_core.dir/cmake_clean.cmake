file(REMOVE_RECURSE
  "CMakeFiles/mrsc_core.dir/builder.cpp.o"
  "CMakeFiles/mrsc_core.dir/builder.cpp.o.d"
  "CMakeFiles/mrsc_core.dir/io.cpp.o"
  "CMakeFiles/mrsc_core.dir/io.cpp.o.d"
  "CMakeFiles/mrsc_core.dir/network.cpp.o"
  "CMakeFiles/mrsc_core.dir/network.cpp.o.d"
  "CMakeFiles/mrsc_core.dir/reaction.cpp.o"
  "CMakeFiles/mrsc_core.dir/reaction.cpp.o.d"
  "CMakeFiles/mrsc_core.dir/transform.cpp.o"
  "CMakeFiles/mrsc_core.dir/transform.cpp.o.d"
  "libmrsc_core.a"
  "libmrsc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrsc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
