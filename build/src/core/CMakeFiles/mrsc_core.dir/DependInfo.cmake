
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/builder.cpp" "src/core/CMakeFiles/mrsc_core.dir/builder.cpp.o" "gcc" "src/core/CMakeFiles/mrsc_core.dir/builder.cpp.o.d"
  "/root/repo/src/core/io.cpp" "src/core/CMakeFiles/mrsc_core.dir/io.cpp.o" "gcc" "src/core/CMakeFiles/mrsc_core.dir/io.cpp.o.d"
  "/root/repo/src/core/network.cpp" "src/core/CMakeFiles/mrsc_core.dir/network.cpp.o" "gcc" "src/core/CMakeFiles/mrsc_core.dir/network.cpp.o.d"
  "/root/repo/src/core/reaction.cpp" "src/core/CMakeFiles/mrsc_core.dir/reaction.cpp.o" "gcc" "src/core/CMakeFiles/mrsc_core.dir/reaction.cpp.o.d"
  "/root/repo/src/core/transform.cpp" "src/core/CMakeFiles/mrsc_core.dir/transform.cpp.o" "gcc" "src/core/CMakeFiles/mrsc_core.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mrsc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
