file(REMOVE_RECURSE
  "CMakeFiles/test_async_circuit.dir/test_async_circuit.cpp.o"
  "CMakeFiles/test_async_circuit.dir/test_async_circuit.cpp.o.d"
  "test_async_circuit"
  "test_async_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_async_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
