file(REMOVE_RECURSE
  "CMakeFiles/test_async_chain.dir/test_async_chain.cpp.o"
  "CMakeFiles/test_async_chain.dir/test_async_chain.cpp.o.d"
  "test_async_chain"
  "test_async_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_async_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
