# Empty compiler generated dependencies file for test_multiply.
# This may be replaced when dependencies are built.
