file(REMOVE_RECURSE
  "CMakeFiles/test_multiply.dir/test_multiply.cpp.o"
  "CMakeFiles/test_multiply.dir/test_multiply.cpp.o.d"
  "test_multiply"
  "test_multiply.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiply.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
