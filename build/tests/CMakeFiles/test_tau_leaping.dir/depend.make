# Empty dependencies file for test_tau_leaping.
# This may be replaced when dependencies are built.
