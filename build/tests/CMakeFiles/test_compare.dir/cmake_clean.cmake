file(REMOVE_RECURSE
  "CMakeFiles/test_compare.dir/test_compare.cpp.o"
  "CMakeFiles/test_compare.dir/test_compare.cpp.o.d"
  "test_compare"
  "test_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
