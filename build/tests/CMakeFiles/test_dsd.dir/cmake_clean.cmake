file(REMOVE_RECURSE
  "CMakeFiles/test_dsd.dir/test_dsd.cpp.o"
  "CMakeFiles/test_dsd.dir/test_dsd.cpp.o.d"
  "test_dsd"
  "test_dsd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
