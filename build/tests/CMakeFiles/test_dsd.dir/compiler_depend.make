# Empty compiler generated dependencies file for test_dsd.
# This may be replaced when dependencies are built.
