file(REMOVE_RECURSE
  "CMakeFiles/test_counter.dir/test_counter.cpp.o"
  "CMakeFiles/test_counter.dir/test_counter.cpp.o.d"
  "test_counter"
  "test_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
