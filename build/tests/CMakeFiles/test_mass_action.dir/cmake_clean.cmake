file(REMOVE_RECURSE
  "CMakeFiles/test_mass_action.dir/test_mass_action.cpp.o"
  "CMakeFiles/test_mass_action.dir/test_mass_action.cpp.o.d"
  "test_mass_action"
  "test_mass_action.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mass_action.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
