# Empty compiler generated dependencies file for test_fir.
# This may be replaced when dependencies are built.
