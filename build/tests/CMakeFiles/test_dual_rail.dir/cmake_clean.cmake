file(REMOVE_RECURSE
  "CMakeFiles/test_dual_rail.dir/test_dual_rail.cpp.o"
  "CMakeFiles/test_dual_rail.dir/test_dual_rail.cpp.o.d"
  "test_dual_rail"
  "test_dual_rail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dual_rail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
