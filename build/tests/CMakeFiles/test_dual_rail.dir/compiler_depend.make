# Empty compiler generated dependencies file for test_dual_rail.
# This may be replaced when dependencies are built.
