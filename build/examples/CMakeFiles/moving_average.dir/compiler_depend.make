# Empty compiler generated dependencies file for moving_average.
# This may be replaced when dependencies are built.
