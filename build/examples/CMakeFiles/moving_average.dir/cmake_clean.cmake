file(REMOVE_RECURSE
  "CMakeFiles/moving_average.dir/moving_average.cpp.o"
  "CMakeFiles/moving_average.dir/moving_average.cpp.o.d"
  "moving_average"
  "moving_average.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moving_average.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
