# Empty dependencies file for dsd_compile.
# This may be replaced when dependencies are built.
