file(REMOVE_RECURSE
  "CMakeFiles/dsd_compile.dir/dsd_compile.cpp.o"
  "CMakeFiles/dsd_compile.dir/dsd_compile.cpp.o.d"
  "dsd_compile"
  "dsd_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsd_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
