file(REMOVE_RECURSE
  "CMakeFiles/counter.dir/counter.cpp.o"
  "CMakeFiles/counter.dir/counter.cpp.o.d"
  "counter"
  "counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
