# Empty dependencies file for signed_filter.
# This may be replaced when dependencies are built.
