file(REMOVE_RECURSE
  "CMakeFiles/signed_filter.dir/signed_filter.cpp.o"
  "CMakeFiles/signed_filter.dir/signed_filter.cpp.o.d"
  "signed_filter"
  "signed_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signed_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
