# Empty dependencies file for sequence_detector.
# This may be replaced when dependencies are built.
