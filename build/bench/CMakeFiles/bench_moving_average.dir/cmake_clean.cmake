file(REMOVE_RECURSE
  "CMakeFiles/bench_moving_average.dir/bench_moving_average.cpp.o"
  "CMakeFiles/bench_moving_average.dir/bench_moving_average.cpp.o.d"
  "bench_moving_average"
  "bench_moving_average.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_moving_average.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
