# Empty compiler generated dependencies file for bench_moving_average.
# This may be replaced when dependencies are built.
