# Empty dependencies file for bench_async_pipeline.
# This may be replaced when dependencies are built.
