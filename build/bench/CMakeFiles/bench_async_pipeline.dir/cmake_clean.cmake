file(REMOVE_RECURSE
  "CMakeFiles/bench_async_pipeline.dir/bench_async_pipeline.cpp.o"
  "CMakeFiles/bench_async_pipeline.dir/bench_async_pipeline.cpp.o.d"
  "bench_async_pipeline"
  "bench_async_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_async_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
