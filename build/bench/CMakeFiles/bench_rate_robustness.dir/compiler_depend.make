# Empty compiler generated dependencies file for bench_rate_robustness.
# This may be replaced when dependencies are built.
