file(REMOVE_RECURSE
  "CMakeFiles/bench_rate_robustness.dir/bench_rate_robustness.cpp.o"
  "CMakeFiles/bench_rate_robustness.dir/bench_rate_robustness.cpp.o.d"
  "bench_rate_robustness"
  "bench_rate_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rate_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
