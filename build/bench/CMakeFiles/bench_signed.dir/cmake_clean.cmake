file(REMOVE_RECURSE
  "CMakeFiles/bench_signed.dir/bench_signed.cpp.o"
  "CMakeFiles/bench_signed.dir/bench_signed.cpp.o.d"
  "bench_signed"
  "bench_signed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_signed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
