file(REMOVE_RECURSE
  "CMakeFiles/bench_delay_chain.dir/bench_delay_chain.cpp.o"
  "CMakeFiles/bench_delay_chain.dir/bench_delay_chain.cpp.o.d"
  "bench_delay_chain"
  "bench_delay_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_delay_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
