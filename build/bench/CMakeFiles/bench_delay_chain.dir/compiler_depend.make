# Empty compiler generated dependencies file for bench_delay_chain.
# This may be replaced when dependencies are built.
