# Empty dependencies file for bench_dsd.
# This may be replaced when dependencies are built.
