file(REMOVE_RECURSE
  "CMakeFiles/bench_dsd.dir/bench_dsd.cpp.o"
  "CMakeFiles/bench_dsd.dir/bench_dsd.cpp.o.d"
  "bench_dsd"
  "bench_dsd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dsd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
