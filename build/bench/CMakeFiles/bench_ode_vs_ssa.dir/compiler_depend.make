# Empty compiler generated dependencies file for bench_ode_vs_ssa.
# This may be replaced when dependencies are built.
