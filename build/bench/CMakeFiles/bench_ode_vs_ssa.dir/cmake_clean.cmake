file(REMOVE_RECURSE
  "CMakeFiles/bench_ode_vs_ssa.dir/bench_ode_vs_ssa.cpp.o"
  "CMakeFiles/bench_ode_vs_ssa.dir/bench_ode_vs_ssa.cpp.o.d"
  "bench_ode_vs_ssa"
  "bench_ode_vs_ssa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ode_vs_ssa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
