
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fsm.cpp" "bench/CMakeFiles/bench_fsm.dir/bench_fsm.cpp.o" "gcc" "bench/CMakeFiles/bench_fsm.dir/bench_fsm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/mrsc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/dna/CMakeFiles/mrsc_dna.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/mrsc_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/fsm/CMakeFiles/mrsc_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/mrsc_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/async/CMakeFiles/mrsc_async.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/mrsc_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/modules/CMakeFiles/mrsc_modules.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mrsc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mrsc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mrsc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
