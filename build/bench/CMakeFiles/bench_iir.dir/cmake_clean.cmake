file(REMOVE_RECURSE
  "CMakeFiles/bench_iir.dir/bench_iir.cpp.o"
  "CMakeFiles/bench_iir.dir/bench_iir.cpp.o.d"
  "bench_iir"
  "bench_iir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_iir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
