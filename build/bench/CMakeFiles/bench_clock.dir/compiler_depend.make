# Empty compiler generated dependencies file for bench_clock.
# This may be replaced when dependencies are built.
