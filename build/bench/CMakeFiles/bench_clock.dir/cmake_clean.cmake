file(REMOVE_RECURSE
  "CMakeFiles/bench_clock.dir/bench_clock.cpp.o"
  "CMakeFiles/bench_clock.dir/bench_clock.cpp.o.d"
  "bench_clock"
  "bench_clock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
