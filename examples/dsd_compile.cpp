// From abstract chemistry to a DNA strand displacement implementation.
//
//   $ ./dsd_compile
//
// Compiles a small reaction cascade to Soloveichik-style DSD gate reactions
// with explicit fuel species, prints both networks, and co-simulates them to
// show the compiled implementation reproduces the formal kinetics while the
// fuels last.
#include <cstdio>

#include "core/builder.hpp"
#include "dna/dsd.hpp"
#include "sim/ode.hpp"

int main() {
  using namespace mrsc;

  core::ReactionNetwork formal;
  core::NetworkBuilder builder(formal);
  builder.species("A", 1.0);
  builder.species("D", 0.4);
  builder.reaction("A -> B", 1.0);
  builder.reaction("B -> C", 0.5);
  builder.reaction("B + D -> E", 2.0);
  std::printf("formal network:\n%s\n", formal.to_string().c_str());

  dna::DsdOptions options;
  options.fuel_initial = 100.0;
  options.q_max = 2000.0;
  const dna::DsdCompilation compiled = dna::compile_to_dsd(formal, options);
  std::printf("compiled DSD network (%zu species, %zu reactions, %zu "
              "fuels):\n%s\n",
              compiled.compiled_stats.species,
              compiled.compiled_stats.reactions, compiled.fuels.size(),
              compiled.network.to_string().c_str());

  sim::OdeOptions ode;
  ode.t_end = 6.0;
  const sim::OdeResult formal_run = simulate_ode(formal, ode);
  const sim::OdeResult dsd_run = simulate_ode(compiled.network, ode);

  std::printf("%-6s %-10s %-10s %-10s %-10s\n", "t", "C formal", "C dsd",
              "E formal", "E dsd");
  for (double t = 1.0; t <= 6.0; t += 1.0) {
    std::printf("%-6.1f %-10.4f %-10.4f %-10.4f %-10.4f\n", t,
                formal_run.trajectory.value_at(t, *formal.find_species("C")),
                dsd_run.trajectory.value_at(
                    t, *compiled.network.find_species("C")),
                formal_run.trajectory.value_at(t, *formal.find_species("E")),
                dsd_run.trajectory.value_at(
                    t, *compiled.network.find_species("E")));
  }
  std::printf("\nThe DSD implementation tracks the formal network: the\n"
              "strand-displacement chassis preserves the computation.\n");
  return 0;
}
