// Self-timed (clockless) sequential transfer — the companion paper's scheme.
//
//   $ ./async_pipeline
//
// Three delay elements hand a value along using only the three global
// absence indicators r, g, b as the handshake: no clock anywhere. The run
// prints the stage concentrations over time so the crisp phase alternation
// (companion Fig. 1(c)) is visible in the terminal.
#include <cstdio>
#include <vector>

#include "analysis/plot.hpp"
#include "async/chain.hpp"
#include "core/network.hpp"
#include "sim/ode.hpp"

int main() {
  using namespace mrsc;

  core::ReactionNetwork net;
  async::ChainSpec spec;
  spec.elements = 3;
  const async::ChainHandles chain = async::build_delay_chain(net, spec);
  net.set_initial(chain.input, 1.0);
  std::printf("self-timed chain, %zu elements: %zu species, %zu reactions\n\n",
              spec.elements, net.species_count(), net.reaction_count());

  sim::OdeOptions options;
  options.t_end = 110.0;
  options.record_interval = 0.25;
  const sim::OdeResult run = simulate_ode(net, options);

  const std::vector<core::SpeciesId> stages = {
      chain.input,    chain.red[0],  chain.green[0], chain.blue[0],
      chain.red[1],   chain.green[1], chain.blue[1],  chain.red[2],
      chain.green[2], chain.blue[2],  chain.output};
  analysis::AsciiPlotOptions plot;
  plot.width = 110;
  plot.height = 16;
  plot.y_min = 0.0;
  plot.y_max = 1.05;
  std::printf("%s\n",
              analysis::plot_trajectory(run.trajectory, net, stages, plot)
                  .c_str());
  std::printf("delivered at output after %.0f time units: %.4f of 1.0\n",
              options.t_end, run.trajectory.final_value(chain.output));
  return 0;
}
