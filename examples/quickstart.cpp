// Quickstart: build a chemical reaction network, simulate it, print the
// result. Ten minutes from zero to a molecular computation.
//
//   $ ./quickstart
//
// The network computes z = (a + b) / 2 with three reactions: two transfers
// that merge the inputs and one second-order reaction that halves the sum.
// Every operation *consumes* its inputs — values move between molecular
// types; that property is what the sequential machinery in the rest of the
// library builds on.
#include <cstdio>

#include "core/builder.hpp"
#include "core/io.hpp"
#include "sim/ode.hpp"

int main() {
  using namespace mrsc;

  // 1. Build the network. Species are created on first mention.
  core::ReactionNetwork net;
  core::NetworkBuilder builder(net);
  builder.species("A", 1.0);   // input a = 1.0 (concentration units)
  builder.species("B", 0.5);   // input b = 0.5
  builder.reaction("A -> S", core::RateCategory::kFast);  // merge
  builder.reaction("B -> S", core::RateCategory::kFast);
  builder.reaction("2 S -> Z", core::RateCategory::kFast);  // halve

  std::printf("The network:\n%s\n", net.to_string().c_str());

  // 2. Simulate the mass-action kinetics (adaptive RK45 by default).
  sim::OdeOptions options;
  options.t_end = 50.0;
  const sim::OdeResult result = simulate_ode(net, options);

  // 3. Read the answer.
  const double z = result.trajectory.final_value(*net.find_species("Z"));
  std::printf("z = (a + b) / 2 = %.4f   (expected 0.75)\n\n", z);

  // 4. Networks serialize to a plain-text format and round-trip losslessly.
  const std::string text = core::serialize_network(net);
  std::printf("Serialized form:\n%s", text.c_str());
  const core::ReactionNetwork reparsed = core::parse_network(text);
  std::printf("\nRound-trip: %zu species, %zu reactions — identical.\n",
              reparsed.species_count(), reparsed.reaction_count());
  return 0;
}
