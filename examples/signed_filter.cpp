// Signed molecular DSP: the first-difference filter y[n] = x[n] - x[n-1].
//
//   $ ./signed_filter
//
// Concentrations cannot be negative, so signed values ride on dual-rail
// pairs (p, n) with v = p - n: railwise add/scale, free negation (rail
// swap), and normalization by annihilation inside registers and output
// ports. The filter's coefficient on x[n-1] is -1 — impossible without the
// encoding — and its output goes genuinely negative whenever the input
// falls.
#include <cstdio>
#include <vector>

#include "analysis/harness.hpp"
#include "analysis/metrics.hpp"
#include "dsp/filters.hpp"

int main() {
  using namespace mrsc;

  auto design = dsp::make_first_difference();
  std::printf("first-difference filter: %zu species, %zu reactions\n\n",
              design.network->species_count(),
              design.network->reaction_count());

  const std::vector<double> x = {0.5, 1.5, 1.5, 0.25, 2.0, 0.0, 1.0};
  std::vector<analysis::PortSamples> inputs(2);
  inputs[0] = {"x_p", x};  // non-negative input stream: drive the p rail
  inputs[1] = {"x_n", std::vector<double>(x.size(), 0.0)};
  const std::vector<std::string> out_ports = {"y_p", "y_n"};

  analysis::ClockedRunOptions options;
  options.ode.t_end = analysis::suggest_t_end(
      {}, design.network->rate_policy(), x.size());
  const auto run = analysis::run_clocked_circuit_multi(
      *design.network, design.circuit, inputs, out_ports, options);
  const auto y = analysis::signed_series(run, "y");
  const auto expected = dsp::reference_first_difference(x);

  std::printf("%-4s %-8s %-10s %-10s %-12s %-12s\n", "n", "x[n]", "p rail",
              "n rail", "y[n]", "expected");
  for (std::size_t n = 0; n < x.size(); ++n) {
    std::printf("%-4zu %-8.2f %-10.4f %-10.4f %-12.4f %-12.4f\n", n, x[n],
                run.outputs.at("y_p")[n], run.outputs.at("y_n")[n], y[n],
                expected[n]);
  }
  std::printf("\nmax error: %.2e — note the negative outputs carried by "
              "the n rail.\n",
              analysis::max_abs_error(y, expected));
  return 0;
}
