// Sequential logic with molecular reactions: a 3-bit binary counter.
//
//   $ ./counter
//
// Each bit is a dual-rail pair of species; once per clock cycle an increment
// token ripples through the bits, toggling and carrying exactly like a
// gate-level ripple counter — which is precisely what it is verified
// against, cycle by cycle.
#include <cstdio>

#include "analysis/harness.hpp"
#include "dsp/counter.hpp"
#include "logic/netlist.hpp"

int main() {
  using namespace mrsc;

  core::ReactionNetwork net;
  dsp::CounterSpec spec;
  spec.bits = 3;
  spec.initial_value = 2;
  const dsp::CounterHandles counter = dsp::build_counter(net, spec);
  std::printf("3-bit molecular counter starting at %llu: %zu species, %zu "
              "reactions\n\n",
              static_cast<unsigned long long>(spec.initial_value),
              net.species_count(), net.reaction_count());

  constexpr std::size_t kIncrements = 14;
  analysis::ClockedRunOptions options;
  options.ode.t_end =
      analysis::suggest_t_end(spec.clock, net.rate_policy(), kIncrements);
  const auto run = analysis::run_counter(net, counter, kIncrements, options);

  // Gate-level golden model for comparison.
  const logic::Netlist golden =
      logic::make_counter_netlist(spec.bits, spec.initial_value);
  logic::Simulation sim(golden);
  const logic::NetId enable = *golden.find("enable");

  std::printf("%-7s %-12s %-12s\n", "cycle", "molecular", "gate-level");
  for (std::size_t i = 0; i < kIncrements; ++i) {
    sim.set_input(enable, true);
    sim.evaluate();
    sim.clock_edge();
    sim.evaluate();
    std::printf("%-7zu %-12llu %-12llu%s\n", i,
                static_cast<unsigned long long>(run.values[i]),
                static_cast<unsigned long long>(sim.output_word()),
                run.values[i] == sim.output_word() ? "" : "   <-- MISMATCH");
  }
  return 0;
}
