// A clocked molecular DSP filter, end to end.
//
//   $ ./moving_average
//
// Builds the moving-average filter y[n] = (x[n] + x[n-1]) / 2 with the
// synchronous circuit compiler: a molecular clock, one delay element (a
// color-triple register), fan-out, addition, and halving reactions. The
// harness injects one input sample per clock cycle and samples the output
// port once per cycle — exactly how the paper's examples are driven.
#include <cstdio>
#include <vector>

#include "analysis/harness.hpp"
#include "analysis/metrics.hpp"
#include "dsp/filters.hpp"
#include "sync/circuit.hpp"

int main() {
  using namespace mrsc;

  // Build the filter via the circuit IR (this is what
  // dsp::make_moving_average does; spelled out here for the tour).
  sync::CircuitBuilder builder;
  const sync::Sig x = builder.input("x");
  const auto copies = builder.fanout(x, 2);
  const sync::Reg delay = builder.add_register("d", 0.0);
  const sync::Sig previous = builder.read(delay);
  builder.write(delay, copies[1]);
  const sync::Sig sum = builder.add(copies[0], previous);
  builder.output("y", builder.scale(sum, 1, 1));  // * 1/2

  core::ReactionNetwork net;
  const sync::CompiledCircuit circuit = builder.compile(net);
  std::printf("compiled: %zu species, %zu reactions (clock included)\n\n",
              net.species_count(), net.reaction_count());

  // Drive it for twelve clock cycles.
  const std::vector<double> samples = {1.0, 1.0, 2.0, 0.0, 0.5, 1.5,
                                       1.5, 0.0, 0.0, 1.0, 1.0, 1.0};
  analysis::ClockedRunOptions options;
  options.ode.t_end =
      analysis::suggest_t_end({}, net.rate_policy(), samples.size());
  const auto run = analysis::run_clocked_circuit(net, circuit, "x", samples,
                                                 "y", options);
  const auto expected = dsp::reference_moving_average(samples);

  std::printf("clock period: %.2f time units\n\n", run.clock_period);
  std::printf("%-4s %-8s %-12s %-12s\n", "n", "x[n]", "y[n]", "expected");
  for (std::size_t n = 0; n < samples.size(); ++n) {
    std::printf("%-4zu %-8.2f %-12.4f %-12.4f\n", n, samples[n],
                run.outputs[n], expected[n]);
  }
  std::printf("\nmax error: %.2e\n",
              analysis::max_abs_error(run.outputs, expected));
  return 0;
}
