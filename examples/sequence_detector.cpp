// General sequential computation: a finite state machine in chemistry.
//
//   $ ./sequence_detector
//
// Compiles the KMP automaton for the bit pattern "101" into a clocked
// reaction network. One input bit per clock cycle arrives as a molecular
// token; the machine's one-hot state species transition; a match emits an
// output token. Overlapping occurrences are counted correctly — it is a real
// automaton, not a pattern hack.
#include <cstdio>
#include <vector>

#include "analysis/harness.hpp"
#include "fsm/fsm.hpp"

int main() {
  using namespace mrsc;

  const fsm::FsmSpec spec = fsm::make_sequence_detector("101");
  core::ReactionNetwork net;
  const fsm::FsmHandles machine = fsm::build_fsm(net, spec);
  std::printf("'101' detector: %zu states, %zu species, %zu reactions\n\n",
              spec.num_states, net.species_count(), net.reaction_count());

  const std::vector<std::size_t> bits = {1, 0, 1, 0, 1, 1, 0, 1, 1, 0, 1};
  analysis::ClockedRunOptions options;
  options.ode.t_end =
      analysis::suggest_t_end(spec.clock, net.rate_policy(), bits.size());
  const auto run = analysis::run_fsm(net, machine, bits, options);
  const fsm::FsmTrace reference = fsm::evaluate_reference(spec, bits);

  std::printf("%-6s %-5s %-10s %-10s %-8s\n", "cycle", "bit", "state(mol)",
              "state(ref)", "match?");
  std::size_t matches = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const bool match = run.outputs[i] != fsm::kNoOutput;
    if (match) ++matches;
    std::printf("%-6zu %-5zu %-10zu %-10zu %s%s\n", i, bits[i],
                run.states[i], reference.states[i], match ? "MATCH" : "-",
                run.states[i] == reference.states[i] ? "" : "  <-- MISMATCH");
  }
  std::printf("\n'101' occurred %zu times (expected 4, counting overlaps)\n",
              matches);
  return 0;
}
